"""Full-system assembly: cores + caches + controller + OS + workloads.

:class:`System` builds every component from a :class:`SystemConfig` and a
scenario description, allocates task footprints through the configured
allocator, and runs the simulation for a number of (scaled) retention
windows, returning a :class:`~repro.core.results.RunResult`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.config.system_configs import SystemConfig
from repro.core.engine import Engine
from repro.core.results import RunResult, TaskResult
from repro.cpu.core import Core, decode_access, encode_access
from repro.dram.address import AddressMapping
from repro.dram.controller import MemoryController
from repro.dram.refresh import make_scheduler, validate_policy
from repro.dram.request import MemoryRequest, RequestType
from repro.dram.timing import DramTiming
from repro.errors import ConfigError, SimulationError
from repro.os.codesign import assign_bank_vectors
from repro.os.page import PhysicalMemory
from repro.os.partition import PartitioningAllocator, PartitionPolicy
from repro.os.refresh_aware import RefreshAwareScheduler
from repro.os.scheduler import CfsScheduler
from repro.os.task import Task
from repro.telemetry.events import SchedulerPickEvent
from repro.telemetry.hub import Telemetry
from repro.telemetry.registry import MetricsRegistry
from repro.workloads.benchmark import BenchmarkSpec, StatisticalWorkload


@dataclass(frozen=True)
class Scenario:
    """A named combination of refresh policy, OS scheduler and allocator."""

    name: str
    refresh_policy: str
    refresh_aware: bool = False
    partition: PartitionPolicy = PartitionPolicy.NONE
    best_effort: bool = False

    def __post_init__(self):
        # Fail at construction, not at System build time: an unknown
        # policy name in a sweep definition surfaces immediately, with a
        # did-you-mean suggestion.
        validate_policy(self.refresh_policy)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "refresh_policy": self.refresh_policy,
            "refresh_aware": self.refresh_aware,
            "partition": self.partition.value,
            "best_effort": self.best_effort,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        from repro.serialize import dataclass_from_dict

        data = dict(data)
        try:
            data["partition"] = PartitionPolicy(data["partition"])
        except (KeyError, ValueError) as exc:
            raise ConfigError(f"Scenario: bad partition policy ({exc})") from None
        return dataclass_from_dict(cls, data)

    def content_hash(self) -> str:
        """Content hash over the full scenario, not just its name — two
        differently configured scenarios that share a name never alias."""
        from repro.serialize import content_hash

        return content_hash(self.to_dict())


#: The scenarios evaluated in the paper (Section 6) plus ablations.
SCENARIOS: dict[str, Scenario] = {
    s.name: s
    for s in [
        Scenario("no_refresh", "no_refresh"),
        Scenario("all_bank", "all_bank"),
        Scenario("per_bank", "per_bank"),
        Scenario("ooo_per_bank", "ooo_per_bank"),
        Scenario("adaptive", "adaptive"),
        Scenario("elastic", "elastic"),
        Scenario("pausing", "pausing"),
        # The full co-design: same-bank refresh + soft partitioning +
        # refresh-aware scheduling (Section 5.3).
        Scenario(
            "codesign",
            "same_bank",
            refresh_aware=True,
            partition=PartitionPolicy.SOFT,
        ),
        # Section 5.4.1 generalization for spilling footprints.
        Scenario(
            "codesign_best_effort",
            "same_bank",
            refresh_aware=True,
            partition=PartitionPolicy.SOFT,
            best_effort=True,
        ),
        # Hard partitioning variant (Section 5.2.1).
        Scenario(
            "codesign_hard",
            "same_bank",
            refresh_aware=True,
            partition=PartitionPolicy.HARD,
        ),
        # Ablation: proposed hardware schedule without the OS changes.
        Scenario("same_bank_hw_only", "same_bank"),
        # Ablation: partitioning + refresh-aware OS on round-robin per-bank
        # refresh is impossible (unpredictable); partitioning alone:
        Scenario(
            "partition_only",
            "per_bank",
            partition=PartitionPolicy.SOFT,
        ),
    ]
}


def scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ConfigError(
            f"unknown scenario {name!r}; known: {sorted(SCENARIOS)}"
        ) from None


class System:
    """One fully wired simulated machine."""

    def __init__(
        self,
        config: SystemConfig,
        specs: list[BenchmarkSpec],
        scenario: Scenario,
        workload_name: str = "custom",
        banks_per_task: int | None = None,
        telemetry: Telemetry | None = None,
    ):
        config.validate()
        if not specs:
            raise ConfigError("at least one task is required")
        self.config = config
        self.scenario = scenario
        self.workload_name = workload_name
        self.telemetry = telemetry if telemetry is not None else Telemetry()

        self.engine = Engine()
        self.telemetry.bind_clock(self.engine)
        self.timing = DramTiming.from_config(config)

        rows_for_mapping = max(
            1, config.bank_capacity_bytes // config.organization.row_size_bytes
        )
        self.mapping = AddressMapping(
            config.organization, rows_for_mapping, layout=config.address_layout
        )
        self.controller = MemoryController(
            self.engine,
            self.timing,
            config.organization,
            self.mapping,
            read_queue_depth=config.read_queue_depth,
            write_queue_depth=config.write_queue_depth,
            write_drain_low=config.write_drain_low,
            write_drain_high=config.write_drain_high,
            row_policy=config.row_policy,
            telemetry=self.telemetry,
        )
        self.refresh_scheduler = make_scheduler(scenario.refresh_policy)
        self.refresh_scheduler.attach(
            self.controller, self.engine, self.timing, telemetry=self.telemetry
        )

        self.memory = PhysicalMemory(self.mapping)
        self.allocator = PartitioningAllocator(
            self.memory, scenario.partition, telemetry=self.telemetry
        )

        self.cores = [
            Core(i, self.engine, self.controller, rob_entries=config.cores.rob_entries)
            for i in range(config.cores.num_cores)
        ]

        self.tasks = self._build_tasks(specs, banks_per_task)
        self._allocate_footprints()

        quantum = self._quantum_cycles()
        if scenario.refresh_aware:
            self.scheduler = RefreshAwareScheduler(
                self.engine,
                self.cores,
                quantum,
                self.refresh_scheduler,
                eta_thresh=config.os.eta_thresh,
                best_effort=scenario.best_effort,
            )
        else:
            self.scheduler = CfsScheduler(self.engine, self.cores, quantum)
        for i, task in enumerate(self.tasks):
            self.scheduler.add_task(task, cpu=i % len(self.cores))
        self.scheduler.subscribe(self._emit_pick)

        self.load_balancer = None
        if config.os.load_balance:
            from repro.os.loadbalance import LoadBalancer

            self.load_balancer = LoadBalancer(
                self.scheduler,
                interval_quanta=config.os.load_balance_interval_quanta,
                bank_aware=scenario.refresh_aware,
                total_banks=config.organization.total_banks,
                telemetry=self.telemetry,
            )

        self._started = False
        # Run progress (set when the measured interval begins, or restored
        # from a checkpoint) and the live sampler, if any.
        self._measure_start: int | None = None
        self._run_end: int | None = None
        self._sampler = None
        self._sampler_windows: int | None = None
        # Scratch request table used while encoding an engine snapshot.
        self._pending_requests: dict | None = None

    # -- construction helpers ---------------------------------------------------

    def _quantum_cycles(self) -> int:
        from repro.units import ClockDomain

        cpu = ClockDomain(self.config.cores.freq_mhz)
        return max(1, cpu.cycles(self.config.quantum_ps))

    def _build_tasks(
        self, specs: list[BenchmarkSpec], banks_per_task: int | None
    ) -> list[Task]:
        vectors: list = [None] * len(specs)
        if self.scenario.partition is not PartitionPolicy.NONE:
            vectors = assign_bank_vectors(
                len(specs),
                len(self.cores),
                self.config.organization,
                banks_per_task=banks_per_task,
            )
        tasks = []
        for i, spec in enumerate(specs):
            workload = StatisticalWorkload(
                spec, self.mapping, line_bytes=self.config.organization.cacheline_bytes
            )
            task = Task(
                name=spec.name,
                workload=workload,
                possible_banks=vectors[i],
                task_id=i,
            )
            task.rng = random.Random(self.config.seed * 100_003 + i)
            tasks.append(task)
        return tasks

    def _allocate_footprints(self) -> None:
        from repro.os.vm import VirtualMemory

        page_bytes = self.mapping.page_bytes
        os_config = self.config.os
        for task in self.tasks:
            footprint = self.config.scale_footprint(
                task.workload.spec.footprint_bytes
            )
            pages = max(1, footprint // page_bytes)
            if os_config.demand_paging:
                vm = VirtualMemory(
                    task,
                    self.allocator,
                    footprint_pages=pages,
                    minor_fault_cycles=os_config.minor_fault_cycles,
                    major_fault_cycles=os_config.major_fault_cycles,
                )
                if os_config.prefault:
                    vm.prefault_all()
            else:
                self.allocator.alloc_footprint(task, pages)

    # -- telemetry ---------------------------------------------------------------

    def _emit_pick(self, time: int, core_id: int, task) -> None:
        """Pick observer installed on the scheduler: enriches the raw
        dispatch with the refresh schedule's view (which bank will be
        refresh-busy mid-quantum, and whether the task has data there)."""
        if not self.telemetry.enabled:
            return
        probe = time + self.scheduler.quantum_cycles // 2
        bank = self.refresh_scheduler.stretch_bank_at(probe)
        conflict = (
            task is not None and bank is not None and task.has_data_in_bank(bank)
        )
        self.telemetry.emit(
            SchedulerPickEvent(
                time=time,
                core_id=core_id,
                task_id=task.task_id if task is not None else None,
                task_name=task.name if task is not None else "(idle)",
                refresh_bank=bank,
                conflict=conflict,
                quantum_cycles=self.scheduler.quantum_cycles,
                fallback=getattr(self.scheduler, "last_pick_fallback", False),
            )
        )

    def metrics(self) -> MetricsRegistry:
        """A :class:`MetricsRegistry` over every live stats object.

        Snapshots are taken at query time, so one registry serves both
        mid-run peeks and end-of-run export (``--metrics-out``).
        """
        registry = MetricsRegistry()
        registry.register("dram.controller", self.controller.stats)
        registry.register("dram.refresh", self.refresh_scheduler.stats)
        for bank in self.controller.banks:
            registry.register(
                f"dram.ch{bank.channel}.rk{bank.rank_id}.bank{bank.bank_id}",
                bank.stats,
            )
        for task in self.tasks:
            registry.register(f"os.task.{task.task_id}", task.stats)
            if task.vm is not None:
                registry.register(f"os.task.{task.task_id}.vm", task.vm.stats)
        allocator = self.allocator
        registry.register(
            "os.alloc",
            lambda: {
                "cache_hits": allocator.cache_hits,
                "cache_fills": allocator.cache_fills,
                "spills": allocator.spills,
                "free_frames": allocator.free_frames(),
            },
        )
        scheduler = self.scheduler
        registry.register(
            "os.sched.context_switches", lambda: scheduler.context_switches
        )
        if isinstance(scheduler, RefreshAwareScheduler):
            registry.register(
                "os.sched.clean_picks", lambda: scheduler.clean_picks
            )
            registry.register(
                "os.sched.fallback_picks", lambda: scheduler.fallback_picks
            )
        if self.load_balancer is not None:
            balancer = self.load_balancer
            registry.register("os.balance.migrations", lambda: balancer.migrations)
        return registry

    # -- execution -------------------------------------------------------------------

    @property
    def window_cycles(self) -> int:
        """CPU cycles in one (scaled) retention window."""
        return self.timing.trefw

    def run(
        self,
        num_windows: float = 2.0,
        warmup_windows: float = 0.25,
        sample_windows: int | None = None,
        checkpoint_every: float | None = None,
        checkpoint_sink=None,
        checkpoint_measure_start: bool = False,
        resume_state: dict | None = None,
    ) -> RunResult | None:
        """Simulate ``warmup + num_windows`` retention windows; statistics
        cover only the measured portion.  With ``sample_windows = N`` a
        timeseries with N samples per retention window is attached to the
        result.

        Checkpointing: with ``checkpoint_every = K`` the run pauses at
        every absolute barrier ``k * K`` retention windows and calls
        ``checkpoint_sink(cycle, state)`` with a :meth:`snapshot_state`
        payload; a truthy return halts the run, which then returns
        ``None``.  ``checkpoint_measure_start = True`` additionally
        offers a checkpoint at the measurement boundary itself (the
        warm-start capture point).  ``resume_state`` restores a prior
        snapshot instead of starting cold and continues to the end
        recorded in it; ``num_windows``/``warmup_windows`` are only
        consulted when the snapshot predates the measured interval.
        """
        if self._started:
            raise ConfigError("a System can only be run once")
        self._started = True  # repro: noqa[RPR011] run-once latch; a resumed run sets it again on entry
        if resume_state is not None:
            self.restore_state(resume_state)
        else:
            self.refresh_scheduler.start()
            self.scheduler.start()
            if self.load_balancer is not None:
                self.load_balancer.start()

        if self._measure_start is None:
            warmup_end = int(self.window_cycles * warmup_windows)
            if warmup_end > 0:
                if self._advance(warmup_end, checkpoint_every, checkpoint_sink):
                    return None
                self._reset_stats()
            self._measure_start = self.engine.now  # repro: noqa[RPR011] captured as run.measure_start in the snapshot composite
            self._run_end = self._measure_start + int(  # repro: noqa[RPR011] captured as run.end in the snapshot composite
                self.window_cycles * num_windows
            )
            if sample_windows is not None:
                from repro.telemetry.timeseries import TimeseriesSampler

                self._sampler = TimeseriesSampler(self, sample_windows)  # repro: noqa[RPR011] captured as run.sampler in the snapshot composite
                self._sampler_windows = sample_windows  # repro: noqa[RPR011] captured as run.sampler.samples_per_window in the snapshot composite
                self._sampler.start(self._measure_start, self._run_end)
            if checkpoint_sink is not None and checkpoint_measure_start:
                if checkpoint_sink(self.engine.now, self.snapshot_state()):
                    return None
        if self._advance(self._run_end, checkpoint_every, checkpoint_sink):
            return None
        result = self._collect(self._measure_start)
        if self._sampler is not None:
            result.timeseries = self._sampler.result()
        return result

    def _advance(
        self, target: int, every: float | None, sink
    ) -> bool:
        """Run to *target*, pausing at each barrier ``k * every`` retention
        windows strictly inside ``(now, target)`` to offer *sink* a
        snapshot.  Returns True when the sink asked to halt."""
        if every is not None and sink is not None:
            step = int(self.window_cycles * every)
            if step > 0:
                barrier = (self.engine.now // step + 1) * step
                while barrier < target:
                    self.engine.run_until(barrier)
                    if sink(barrier, self.snapshot_state()):
                        return True
                    barrier += step
        self.engine.run_until(target)
        return False

    def _reset_stats(self) -> None:
        from repro.dram.controller import ControllerStats
        from repro.dram.refresh.base import RefreshStats
        from repro.os.task import TaskStats

        from repro.dram.bank import BankStats

        now = self.engine.now
        # Credit fast-forwarded compute gaps that elapsed before the
        # warmup boundary, so zeroing below drops exactly what the
        # one-event-per-gap schedule would have credited by now.
        for core in self.cores:
            core.sync_accounting(now)
        self.controller.stats = ControllerStats()
        self.refresh_scheduler.stats = RefreshStats()
        for bank in self.controller.banks:
            bank.stats = BankStats()
        for bus in self.controller.buses:
            bus.busy_cycles = 0
        for task in self.tasks:
            task.stats = TaskStats()
            if task.current_core is not None:
                task._scheduled_at = now
                task.stats.quanta = 1
        self.scheduler.context_switches = 0
        if isinstance(self.scheduler, RefreshAwareScheduler):
            self.scheduler.clean_picks = 0
            self.scheduler.fallback_picks = 0

    def _collect(self, measure_start: int) -> RunResult:
        now = self.engine.now
        # Close each running task's accounting interval.
        for core in self.cores:
            core.sync_accounting(now)
            task = core.current_task
            if task is not None and task._scheduled_at is not None:
                task.stats.scheduled_cycles += now - task._scheduled_at
                task._scheduled_at = now

        elapsed = now - measure_start
        mc_stats = self.controller.stats
        task_results = [
            TaskResult(
                task_id=t.task_id,
                name=t.name,
                instructions=t.stats.instructions,
                scheduled_cycles=t.stats.scheduled_cycles,
                quanta=t.stats.quanta,
                reads_completed=t.stats.reads_completed,
                avg_read_latency_cycles=t.stats.avg_read_latency,
                refresh_stall_cycles=t.stats.refresh_stall_sum,
            )
            for t in self.tasks
        ]
        clean = fallback = 0
        if isinstance(self.scheduler, RefreshAwareScheduler):
            clean = self.scheduler.clean_picks
            fallback = self.scheduler.fallback_picks
        from repro.dram.power import estimate_energy

        energy = estimate_energy(self.controller, elapsed)
        return RunResult(
            energy=energy,
            scenario=self.scenario.name,
            workload=self.workload_name,
            density_gbit=self.config.density_gbit,
            trefw_ms=self.config.trefw_ps / 1e9,
            simulated_cycles=elapsed,
            tasks=task_results,
            reads_completed=mc_stats.reads_completed,
            writes_completed=mc_stats.writes_completed,
            avg_read_latency_cycles=mc_stats.avg_read_latency,
            cpu_per_mem_cycle=self.timing.cpu_per_mem_cycle,
            row_hit_rate=mc_stats.row_hit_rate,
            refresh_commands=self.refresh_scheduler.stats.commands_issued,
            refresh_stall_cycles=mc_stats.refresh_stall_sum,
            refresh_stalled_reads=mc_stats.refresh_stalled_reads,
            context_switches=self.scheduler.context_switches,
            scheduler_clean_picks=clean,
            scheduler_fallback_picks=fallback,
            bus_utilization=self.controller.buses[0].utilization(elapsed),
        )

    # -- checkpoint/restore ----------------------------------------------------

    def snapshot_state(self) -> dict:
        """Deterministic-barrier snapshot of the full machine.

        Only legal between events (the engine refuses mid-bucket).
        Telemetry sinks, monitors and profilers are runtime observers,
        not simulator state, and are deliberately not captured.  The
        composite is assembled incrementally because encoding the engine
        queue discovers in-flight ``_complete`` requests that the
        ``requests`` table must also carry.
        """
        now = self.engine.now
        for core in self.cores:
            core.sync_accounting(now)
        self._pending_requests = {  # repro: noqa[RPR011] encode-phase scratch, reset to None before this method returns
            r.req_id: r for r in self.controller.queued_requests()
        }
        state = {}
        state["engine"] = self.engine.snapshot_state(self._encode_entry)
        state["requests"] = [
            self._encode_request(self._pending_requests[rid])
            for rid in sorted(self._pending_requests)
        ]
        self._pending_requests = None
        state["controller"] = self.controller.snapshot_state()
        state["refresh"] = {
            "policy": self.scenario.refresh_policy,
            "state": self.refresh_scheduler.snapshot_state(),
        }
        state["cores"] = [core.snapshot_state() for core in self.cores]
        state["tasks"] = [task.snapshot_state() for task in self.tasks]
        state["memory"] = self.memory.snapshot_state()
        state["allocator"] = self.allocator.snapshot_state()
        state["scheduler"] = self.scheduler.snapshot_state()
        state["load_balancer"] = (
            None
            if self.load_balancer is None
            else self.load_balancer.snapshot_state()
        )
        state["run"] = {
            "measure_start": self._measure_start,
            "end": self._run_end,
            "sampler": (
                None
                if self._sampler is None
                else {
                    "samples_per_window": self._sampler_windows,
                    "state": self._sampler.snapshot_state(),
                }
            ),
        }
        return state

    def restore_state(self, state: dict) -> None:
        """Rebuild the machine from a :meth:`snapshot_state` payload taken
        on an identically configured system.

        Restoring under a *different* refresh policy is supported: the
        snapshot's refresh events are dropped and the new policy starts
        mid-run (the contract documented on ``RefreshScheduler.start``).
        Order matters: tasks and cores restore before the request table
        (decoded ROB entries need the restored windows); the sampler is
        recreated before the engine queue (its tick descriptors must
        decode); the engine restores last.
        """
        task_by_id = {}
        for task, task_state in zip(self.tasks, state["tasks"]):
            task.restore_state(task_state)
            task_by_id[task.task_id] = task
        self.memory.restore_state(state["memory"])
        self.allocator.restore_state(state["allocator"])
        for core, core_state in zip(self.cores, state["cores"]):
            core.restore_state(core_state, task_by_id)
        requests = {}
        for req_data in state["requests"]:
            request = self._decode_request(req_data, task_by_id)
            requests[request.req_id] = request
        self.controller.restore_state(state["controller"], requests)
        self.scheduler.restore_state(state["scheduler"], task_by_id)
        lb_state = state["load_balancer"]
        if lb_state is not None and self.load_balancer is not None:
            self.load_balancer.restore_state(lb_state)
        same_refresh = (
            state["refresh"]["policy"] == self.scenario.refresh_policy
        )
        if same_refresh:
            self.refresh_scheduler.restore_state(state["refresh"]["state"])
        run = state["run"]
        self._measure_start = run["measure_start"]
        self._run_end = run["end"]
        sampler_state = run["sampler"]
        if sampler_state is not None:
            from repro.telemetry.timeseries import TimeseriesSampler

            self._sampler_windows = int(sampler_state["samples_per_window"])
            self._sampler = TimeseriesSampler(self, self._sampler_windows)
            self._sampler.restore_state(sampler_state["state"])
        self.engine.restore_state(
            state["engine"],
            lambda desc: self._decode_entry(desc, requests, same_refresh),
        )
        if not same_refresh:
            self.refresh_scheduler.start()
        if lb_state is None and self.load_balancer is not None:
            self.load_balancer.start()

    # -- engine-entry codecs ---------------------------------------------------

    def _encode_entry(self, fn, arg) -> list:
        """Map a queued bound-method callback to a JSON-able descriptor."""
        owner = getattr(fn, "__self__", None)
        name = getattr(fn, "__name__", repr(fn))
        if owner is None:
            raise SimulationError(f"cannot snapshot unbound callback {fn!r}")
        if owner is self.controller:
            if name == "_complete":
                self._pending_requests[arg.req_id] = arg
                return ["controller", name, arg.req_id]
            if name == "_pick_many":
                return ["controller", name, list(arg)]
            return ["controller", name, arg]
        if owner is self.refresh_scheduler:
            return ["refresh", name, list(arg) if isinstance(arg, tuple) else arg]
        if owner is self.scheduler:
            return ["sched", name, arg]
        if self.load_balancer is not None and owner is self.load_balancer:
            return ["lb", name, arg]
        if self._sampler is not None and owner is self._sampler:
            return ["sampler", name, arg]
        if isinstance(owner, Core):
            epoch, access = arg
            return [
                f"core:{owner.core_id}", name, [epoch, encode_access(access)]
            ]
        raise SimulationError(
            f"cannot snapshot callback {name!r} bound to "
            f"{type(owner).__name__}"
        )

    def _decode_entry(self, desc, requests: dict, same_refresh: bool):
        """Inverse of :meth:`_encode_entry`; ``None`` drops the entry."""
        owner_key, name, arg = desc
        if owner_key == "controller":
            fn = getattr(self.controller, name)
            if name == "_complete":
                return fn, requests[int(arg)]
            if name == "_pick_many":
                return fn, [int(flat) for flat in arg]
            return fn, int(arg)
        if owner_key == "refresh":
            if not same_refresh:
                return None  # new policy starts mid-run instead
            if isinstance(arg, list):
                arg = tuple(int(v) for v in arg)
            return getattr(self.refresh_scheduler, name), arg
        if owner_key == "sched":
            return getattr(self.scheduler, name), arg
        if owner_key == "lb":
            if self.load_balancer is None:
                return None
            return getattr(self.load_balancer, name), arg
        if owner_key == "sampler":
            if self._sampler is None:
                return None
            return getattr(self._sampler, name), arg
        if owner_key.startswith("core:"):
            core = self.cores[int(owner_key.split(":", 1)[1])]
            epoch, access_data = arg
            return getattr(core, name), (int(epoch), decode_access(access_data))
        raise SimulationError(f"cannot restore callback descriptor {desc!r}")

    # -- request codec ---------------------------------------------------------

    def _encode_request(self, request: MemoryRequest) -> dict:
        """Serialize one queued/in-flight request.  The coordinate is
        recomputed from the address on restore; a ROB entry referenced by
        a *stale-epoch* ctx is encoded as a dangling index (``None``) —
        the completion path discards stale-epoch contexts before touching
        the entry."""
        core_id = None
        if request.on_complete is not None:
            core_id = request.on_complete.__self__.core_id
        ctx = None
        if request.ctx is not None:
            epoch, task, entry = request.ctx
            core = self.cores[core_id]
            rob_index = core.rob_index(entry) if epoch == core._epoch else None
            ctx = [epoch, task.task_id, rob_index]
        return {
            "req_id": request.req_id,
            "rtype": request.rtype.value,
            "address": request.address,
            "task_id": request.task_id,
            "arrive_time": request.arrive_time,
            "start_time": request.start_time,
            "refresh_stall": request.refresh_stall,
            "row_hit": request.row_hit,
            "core_id": core_id,
            "ctx": ctx,
        }

    def _decode_request(self, data: dict, task_by_id: dict) -> MemoryRequest:
        address = int(data["address"])
        request = MemoryRequest(
            RequestType(data["rtype"]),
            address,
            self.mapping.address_to_coordinate(address),
            task_id=int(data["task_id"]),
            req_id=int(data["req_id"]),
        )
        request.arrive_time = int(data["arrive_time"])
        request.start_time = int(data["start_time"])
        request.refresh_stall = int(data["refresh_stall"])
        request.row_hit = bool(data["row_hit"])
        core_id = data["core_id"]
        if core_id is not None:
            core = self.cores[int(core_id)]
            request.on_complete = core._on_read_complete
            ctx = data["ctx"]
            if ctx is not None:
                epoch, task_id, rob_index = ctx
                entry = (
                    core.rob_entry(int(rob_index))
                    if rob_index is not None
                    else None
                )
                request.ctx = (int(epoch), task_by_id[int(task_id)], entry)
        return request
