"""Full-system assembly: cores + caches + controller + OS + workloads.

:class:`System` builds every component from a :class:`SystemConfig` and a
scenario description, allocates task footprints through the configured
allocator, and runs the simulation for a number of (scaled) retention
windows, returning a :class:`~repro.core.results.RunResult`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.config.system_configs import SystemConfig
from repro.core.engine import Engine
from repro.core.results import RunResult, TaskResult
from repro.cpu.core import Core
from repro.dram.address import AddressMapping
from repro.dram.controller import MemoryController
from repro.dram.refresh import make_scheduler, validate_policy
from repro.dram.timing import DramTiming
from repro.errors import ConfigError
from repro.os.codesign import assign_bank_vectors
from repro.os.page import PhysicalMemory
from repro.os.partition import PartitioningAllocator, PartitionPolicy
from repro.os.refresh_aware import RefreshAwareScheduler
from repro.os.scheduler import CfsScheduler
from repro.os.task import Task
from repro.telemetry.events import SchedulerPickEvent
from repro.telemetry.hub import Telemetry
from repro.telemetry.registry import MetricsRegistry
from repro.workloads.benchmark import BenchmarkSpec, StatisticalWorkload


@dataclass(frozen=True)
class Scenario:
    """A named combination of refresh policy, OS scheduler and allocator."""

    name: str
    refresh_policy: str
    refresh_aware: bool = False
    partition: PartitionPolicy = PartitionPolicy.NONE
    best_effort: bool = False

    def __post_init__(self):
        # Fail at construction, not at System build time: an unknown
        # policy name in a sweep definition surfaces immediately, with a
        # did-you-mean suggestion.
        validate_policy(self.refresh_policy)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "refresh_policy": self.refresh_policy,
            "refresh_aware": self.refresh_aware,
            "partition": self.partition.value,
            "best_effort": self.best_effort,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        from repro.serialize import dataclass_from_dict

        data = dict(data)
        try:
            data["partition"] = PartitionPolicy(data["partition"])
        except (KeyError, ValueError) as exc:
            raise ConfigError(f"Scenario: bad partition policy ({exc})") from None
        return dataclass_from_dict(cls, data)

    def content_hash(self) -> str:
        """Content hash over the full scenario, not just its name — two
        differently configured scenarios that share a name never alias."""
        from repro.serialize import content_hash

        return content_hash(self.to_dict())


#: The scenarios evaluated in the paper (Section 6) plus ablations.
SCENARIOS: dict[str, Scenario] = {
    s.name: s
    for s in [
        Scenario("no_refresh", "no_refresh"),
        Scenario("all_bank", "all_bank"),
        Scenario("per_bank", "per_bank"),
        Scenario("ooo_per_bank", "ooo_per_bank"),
        Scenario("adaptive", "adaptive"),
        Scenario("elastic", "elastic"),
        Scenario("pausing", "pausing"),
        # The full co-design: same-bank refresh + soft partitioning +
        # refresh-aware scheduling (Section 5.3).
        Scenario(
            "codesign",
            "same_bank",
            refresh_aware=True,
            partition=PartitionPolicy.SOFT,
        ),
        # Section 5.4.1 generalization for spilling footprints.
        Scenario(
            "codesign_best_effort",
            "same_bank",
            refresh_aware=True,
            partition=PartitionPolicy.SOFT,
            best_effort=True,
        ),
        # Hard partitioning variant (Section 5.2.1).
        Scenario(
            "codesign_hard",
            "same_bank",
            refresh_aware=True,
            partition=PartitionPolicy.HARD,
        ),
        # Ablation: proposed hardware schedule without the OS changes.
        Scenario("same_bank_hw_only", "same_bank"),
        # Ablation: partitioning + refresh-aware OS on round-robin per-bank
        # refresh is impossible (unpredictable); partitioning alone:
        Scenario(
            "partition_only",
            "per_bank",
            partition=PartitionPolicy.SOFT,
        ),
    ]
}


def scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ConfigError(
            f"unknown scenario {name!r}; known: {sorted(SCENARIOS)}"
        ) from None


class System:
    """One fully wired simulated machine."""

    def __init__(
        self,
        config: SystemConfig,
        specs: list[BenchmarkSpec],
        scenario: Scenario,
        workload_name: str = "custom",
        banks_per_task: int | None = None,
        telemetry: Telemetry | None = None,
    ):
        config.validate()
        if not specs:
            raise ConfigError("at least one task is required")
        self.config = config
        self.scenario = scenario
        self.workload_name = workload_name
        self.telemetry = telemetry if telemetry is not None else Telemetry()

        self.engine = Engine()
        self.telemetry.bind_clock(self.engine)
        self.timing = DramTiming.from_config(config)

        rows_for_mapping = max(
            1, config.bank_capacity_bytes // config.organization.row_size_bytes
        )
        self.mapping = AddressMapping(
            config.organization, rows_for_mapping, layout=config.address_layout
        )
        self.controller = MemoryController(
            self.engine,
            self.timing,
            config.organization,
            self.mapping,
            read_queue_depth=config.read_queue_depth,
            write_queue_depth=config.write_queue_depth,
            write_drain_low=config.write_drain_low,
            write_drain_high=config.write_drain_high,
            row_policy=config.row_policy,
            telemetry=self.telemetry,
        )
        self.refresh_scheduler = make_scheduler(scenario.refresh_policy)
        self.refresh_scheduler.attach(
            self.controller, self.engine, self.timing, telemetry=self.telemetry
        )

        self.memory = PhysicalMemory(self.mapping)
        self.allocator = PartitioningAllocator(
            self.memory, scenario.partition, telemetry=self.telemetry
        )

        self.cores = [
            Core(i, self.engine, self.controller, rob_entries=config.cores.rob_entries)
            for i in range(config.cores.num_cores)
        ]

        self.tasks = self._build_tasks(specs, banks_per_task)
        self._allocate_footprints()

        quantum = self._quantum_cycles()
        if scenario.refresh_aware:
            self.scheduler = RefreshAwareScheduler(
                self.engine,
                self.cores,
                quantum,
                self.refresh_scheduler,
                eta_thresh=config.os.eta_thresh,
                best_effort=scenario.best_effort,
            )
        else:
            self.scheduler = CfsScheduler(self.engine, self.cores, quantum)
        for i, task in enumerate(self.tasks):
            self.scheduler.add_task(task, cpu=i % len(self.cores))
        self.scheduler.subscribe(self._emit_pick)

        self.load_balancer = None
        if config.os.load_balance:
            from repro.os.loadbalance import LoadBalancer

            self.load_balancer = LoadBalancer(
                self.scheduler,
                interval_quanta=config.os.load_balance_interval_quanta,
                bank_aware=scenario.refresh_aware,
                total_banks=config.organization.total_banks,
                telemetry=self.telemetry,
            )

        self._started = False

    # -- construction helpers ---------------------------------------------------

    def _quantum_cycles(self) -> int:
        from repro.units import ClockDomain

        cpu = ClockDomain(self.config.cores.freq_mhz)
        return max(1, cpu.cycles(self.config.quantum_ps))

    def _build_tasks(
        self, specs: list[BenchmarkSpec], banks_per_task: int | None
    ) -> list[Task]:
        vectors: list = [None] * len(specs)
        if self.scenario.partition is not PartitionPolicy.NONE:
            vectors = assign_bank_vectors(
                len(specs),
                len(self.cores),
                self.config.organization,
                banks_per_task=banks_per_task,
            )
        tasks = []
        for i, spec in enumerate(specs):
            workload = StatisticalWorkload(
                spec, self.mapping, line_bytes=self.config.organization.cacheline_bytes
            )
            task = Task(
                name=spec.name,
                workload=workload,
                possible_banks=vectors[i],
                task_id=i,
            )
            task.rng = random.Random(self.config.seed * 100_003 + i)
            tasks.append(task)
        return tasks

    def _allocate_footprints(self) -> None:
        from repro.os.vm import VirtualMemory

        page_bytes = self.mapping.page_bytes
        os_config = self.config.os
        for task in self.tasks:
            footprint = self.config.scale_footprint(
                task.workload.spec.footprint_bytes
            )
            pages = max(1, footprint // page_bytes)
            if os_config.demand_paging:
                vm = VirtualMemory(
                    task,
                    self.allocator,
                    footprint_pages=pages,
                    minor_fault_cycles=os_config.minor_fault_cycles,
                    major_fault_cycles=os_config.major_fault_cycles,
                )
                if os_config.prefault:
                    vm.prefault_all()
            else:
                self.allocator.alloc_footprint(task, pages)

    # -- telemetry ---------------------------------------------------------------

    def _emit_pick(self, time: int, core_id: int, task) -> None:
        """Pick observer installed on the scheduler: enriches the raw
        dispatch with the refresh schedule's view (which bank will be
        refresh-busy mid-quantum, and whether the task has data there)."""
        if not self.telemetry.enabled:
            return
        probe = time + self.scheduler.quantum_cycles // 2
        bank = self.refresh_scheduler.stretch_bank_at(probe)
        conflict = (
            task is not None and bank is not None and task.has_data_in_bank(bank)
        )
        self.telemetry.emit(
            SchedulerPickEvent(
                time=time,
                core_id=core_id,
                task_id=task.task_id if task is not None else None,
                task_name=task.name if task is not None else "(idle)",
                refresh_bank=bank,
                conflict=conflict,
                quantum_cycles=self.scheduler.quantum_cycles,
                fallback=getattr(self.scheduler, "last_pick_fallback", False),
            )
        )

    def metrics(self) -> MetricsRegistry:
        """A :class:`MetricsRegistry` over every live stats object.

        Snapshots are taken at query time, so one registry serves both
        mid-run peeks and end-of-run export (``--metrics-out``).
        """
        registry = MetricsRegistry()
        registry.register("dram.controller", self.controller.stats)
        registry.register("dram.refresh", self.refresh_scheduler.stats)
        for bank in self.controller.banks:
            registry.register(
                f"dram.ch{bank.channel}.rk{bank.rank_id}.bank{bank.bank_id}",
                bank.stats,
            )
        for task in self.tasks:
            registry.register(f"os.task.{task.task_id}", task.stats)
            if task.vm is not None:
                registry.register(f"os.task.{task.task_id}.vm", task.vm.stats)
        allocator = self.allocator
        registry.register(
            "os.alloc",
            lambda: {
                "cache_hits": allocator.cache_hits,
                "cache_fills": allocator.cache_fills,
                "spills": allocator.spills,
                "free_frames": allocator.free_frames(),
            },
        )
        scheduler = self.scheduler
        registry.register(
            "os.sched.context_switches", lambda: scheduler.context_switches
        )
        if isinstance(scheduler, RefreshAwareScheduler):
            registry.register(
                "os.sched.clean_picks", lambda: scheduler.clean_picks
            )
            registry.register(
                "os.sched.fallback_picks", lambda: scheduler.fallback_picks
            )
        if self.load_balancer is not None:
            balancer = self.load_balancer
            registry.register("os.balance.migrations", lambda: balancer.migrations)
        return registry

    # -- execution -------------------------------------------------------------------

    @property
    def window_cycles(self) -> int:
        """CPU cycles in one (scaled) retention window."""
        return self.timing.trefw

    def run(
        self,
        num_windows: float = 2.0,
        warmup_windows: float = 0.25,
        sample_windows: int | None = None,
    ) -> RunResult:
        """Simulate ``warmup + num_windows`` retention windows; statistics
        cover only the measured portion.  With ``sample_windows = N`` a
        timeseries with N samples per retention window is attached to the
        result."""
        if self._started:
            raise ConfigError("a System can only be run once")
        self._started = True
        self.refresh_scheduler.start()
        self.scheduler.start()
        if self.load_balancer is not None:
            self.load_balancer.start()

        if warmup_windows > 0:
            self.engine.run_until(int(self.window_cycles * warmup_windows))
            self._reset_stats()
        measure_start = self.engine.now
        end = measure_start + int(self.window_cycles * num_windows)
        sampler = None
        if sample_windows is not None:
            from repro.telemetry.timeseries import TimeseriesSampler

            sampler = TimeseriesSampler(self, sample_windows)
            sampler.start(measure_start, end)
        self.engine.run_until(end)
        result = self._collect(measure_start)
        if sampler is not None:
            result.timeseries = sampler.result()
        return result

    def _reset_stats(self) -> None:
        from repro.dram.controller import ControllerStats
        from repro.dram.refresh.base import RefreshStats
        from repro.os.task import TaskStats

        from repro.dram.bank import BankStats

        now = self.engine.now
        # Credit fast-forwarded compute gaps that elapsed before the
        # warmup boundary, so zeroing below drops exactly what the
        # one-event-per-gap schedule would have credited by now.
        for core in self.cores:
            core.sync_accounting(now)
        self.controller.stats = ControllerStats()
        self.refresh_scheduler.stats = RefreshStats()
        for bank in self.controller.banks:
            bank.stats = BankStats()
        for bus in self.controller.buses:
            bus.busy_cycles = 0
        for task in self.tasks:
            task.stats = TaskStats()
            if task.current_core is not None:
                task._scheduled_at = now
                task.stats.quanta = 1
        self.scheduler.context_switches = 0
        if isinstance(self.scheduler, RefreshAwareScheduler):
            self.scheduler.clean_picks = 0
            self.scheduler.fallback_picks = 0

    def _collect(self, measure_start: int) -> RunResult:
        now = self.engine.now
        # Close each running task's accounting interval.
        for core in self.cores:
            core.sync_accounting(now)
            task = core.current_task
            if task is not None and task._scheduled_at is not None:
                task.stats.scheduled_cycles += now - task._scheduled_at
                task._scheduled_at = now

        elapsed = now - measure_start
        mc_stats = self.controller.stats
        task_results = [
            TaskResult(
                task_id=t.task_id,
                name=t.name,
                instructions=t.stats.instructions,
                scheduled_cycles=t.stats.scheduled_cycles,
                quanta=t.stats.quanta,
                reads_completed=t.stats.reads_completed,
                avg_read_latency_cycles=t.stats.avg_read_latency,
                refresh_stall_cycles=t.stats.refresh_stall_sum,
            )
            for t in self.tasks
        ]
        clean = fallback = 0
        if isinstance(self.scheduler, RefreshAwareScheduler):
            clean = self.scheduler.clean_picks
            fallback = self.scheduler.fallback_picks
        from repro.dram.power import estimate_energy

        energy = estimate_energy(self.controller, elapsed)
        return RunResult(
            energy=energy,
            scenario=self.scenario.name,
            workload=self.workload_name,
            density_gbit=self.config.density_gbit,
            trefw_ms=self.config.trefw_ps / 1e9,
            simulated_cycles=elapsed,
            tasks=task_results,
            reads_completed=mc_stats.reads_completed,
            writes_completed=mc_stats.writes_completed,
            avg_read_latency_cycles=mc_stats.avg_read_latency,
            cpu_per_mem_cycle=self.timing.cpu_per_mem_cycle,
            row_hit_rate=mc_stats.row_hit_rate,
            refresh_commands=self.refresh_scheduler.stats.commands_issued,
            refresh_stall_cycles=mc_stats.refresh_stall_sum,
            refresh_stalled_reads=mc_stats.refresh_stalled_reads,
            context_switches=self.scheduler.context_switches,
            scheduler_clean_picks=clean,
            scheduler_fallback_picks=fallback,
            bus_utilization=self.controller.buses[0].utilization(elapsed),
        )
