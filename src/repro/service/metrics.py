"""Latency histograms and Prometheus exposition for the sweep service.

Everything here follows the repo-wide determinism split:

* **deterministic** — per-tier request counts and the *simulated-cycles*
  histogram (how much simulation each served result represents) are
  pure functions of the request stream.  They are what CI compares and
  what must agree exactly with :meth:`SweepService.counters`.
* **wall-clock** — the *service-latency* histogram (microseconds from
  request arrival to served result) is an artifact for operators and is
  never part of a gated comparison.

Histograms use fixed log2 bucket edges with exact integer counts — no
sampling, no decay — so two identical request streams produce identical
deterministic snapshots byte-for-byte.

:func:`start_metrics_http` serves the Prometheus text format over plain
HTTP (stdlib only) for ``python -m repro serve --metrics-port``; the
same text is available in-band through the wire protocol's ``metrics``
op, so scrapes work even without the side port.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

#: Bucket edges (inclusive upper bounds) for simulated cycles per served
#: result: 2^10 .. 2^32.  Fixed so snapshots from different runs align.
CYCLE_BUCKETS = tuple(1 << p for p in range(10, 33))

#: Bucket edges for wall service latency in microseconds: 2^0 .. 2^24
#: (1 µs .. ~16.8 s).  Artifact-only.
WALL_BUCKETS_US = tuple(1 << p for p in range(0, 25))

#: Resolution tiers, in stable exposition order.  ``monitored_*`` tiers
#: keep monitored jobs (keyed ``<hash>+monitors:<mode>``) from aliasing
#: the plain counters — satellite fix for ``SweepService.counters()``.
TIERS = (
    "executed",
    "live",
    "memo",
    "dedup",
    "cache",
    "monitored_live",
    "monitored_memo",
    "monitored_dedup",
)


class Histogram:
    """Fixed-edge cumulative histogram with exact counts.

    ``edges`` are inclusive upper bounds; one implicit overflow bucket
    (``+Inf``) catches everything beyond the last edge.
    """

    __slots__ = ("edges", "counts", "total", "sum")

    def __init__(self, edges: tuple[int, ...]):
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)
        self.total = 0
        self.sum = 0

    def observe(self, value: int) -> None:
        for i, edge in enumerate(self.edges):
            if value <= edge:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += 1
        self.sum += value

    def snapshot(self) -> dict:
        """Plain-dict view: bucket counts keyed by edge, plus totals."""
        buckets = {str(edge): self.counts[i]
                   for i, edge in enumerate(self.edges)
                   if self.counts[i]}
        if self.counts[-1]:
            buckets["+Inf"] = self.counts[-1]
        return {"buckets": buckets, "count": self.total, "sum": self.sum}


class ServiceMetrics:
    """Thread-safe per-tier request metrics for one :class:`SweepService`.

    One :meth:`observe` per served result, tagged with the resolution
    tier that answered it.  All tiers are pre-declared (:data:`TIERS`)
    so the exposition's label set is stable from the first scrape.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._hits = {tier: 0 for tier in TIERS}
        self._cycles = {tier: Histogram(CYCLE_BUCKETS) for tier in TIERS}
        self._wall = {tier: Histogram(WALL_BUCKETS_US) for tier in TIERS}

    def observe(self, tier: str, simulated_cycles: int, wall_us: int) -> None:
        with self._lock:
            if tier not in self._hits:
                self._hits[tier] = 0
                self._cycles[tier] = Histogram(CYCLE_BUCKETS)
                self._wall[tier] = Histogram(WALL_BUCKETS_US)
            self._hits[tier] += 1
            self._cycles[tier].observe(simulated_cycles)
            self._wall[tier].observe(wall_us)

    def deterministic_snapshot(self) -> dict:
        """Gate-safe view: tier hit counts and simulated-cycles
        histograms.  No wall-clock field appears anywhere below here."""
        with self._lock:
            return {
                "tiers": dict(self._hits),
                "cycles": {tier: h.snapshot()
                           for tier, h in self._cycles.items()},
            }

    def wall_snapshot(self) -> dict:
        """Artifact-only view: wall service-latency histograms."""
        with self._lock:
            return {tier: h.snapshot() for tier, h in self._wall.items()}

    def render_prometheus(self, counters: Optional[dict] = None,
                          info: Optional[dict] = None) -> str:
        """Prometheus text exposition (version 0.0.4).

        ``counters`` (the :meth:`SweepService.counters` dict) exposes
        the service's lifetime gauges alongside the histograms so one
        scrape carries both; ``info`` renders as a constant
        ``repro_service_info`` gauge with one label per key.
        """
        det = self.deterministic_snapshot()
        wall = self.wall_snapshot()
        lines = []
        if info:
            labels = ",".join(f'{k}="{info[k]}"' for k in sorted(info))
            lines.append("# HELP repro_service_info Static service "
                         "configuration.")
            lines.append("# TYPE repro_service_info gauge")
            lines.append(f"repro_service_info{{{labels}}} 1")
        if counters:
            lines.append("# HELP repro_service_counter Lifetime service "
                         "counters (SweepService.counters()).")
            lines.append("# TYPE repro_service_counter gauge")
            for key in sorted(counters):
                value = counters[key]
                if isinstance(value, bool):
                    value = int(value)
                if isinstance(value, (int, float)):
                    lines.append(
                        f'repro_service_counter{{name="{key}"}} {value}'
                    )
        lines.append("# HELP repro_service_requests_total Served results "
                     "by resolution tier (deterministic).")
        lines.append("# TYPE repro_service_requests_total counter")
        for tier in sorted(det["tiers"]):
            lines.append(
                f'repro_service_requests_total{{tier="{tier}"}} '
                f'{det["tiers"][tier]}'
            )
        lines.extend(self._render_histogram(
            "repro_service_simulated_cycles",
            "Simulated cycles per served result (deterministic).",
            det["cycles"],
        ))
        lines.extend(self._render_histogram(
            "repro_service_wall_latency_us",
            "Wall service latency in microseconds (artifact-only; "
            "never gate on this).",
            wall,
        ))
        return "\n".join(lines) + "\n"

    @staticmethod
    def _render_histogram(name: str, help_text: str,
                          per_tier: dict) -> list[str]:
        lines = [f"# HELP {name} {help_text}", f"# TYPE {name} histogram"]
        for tier in sorted(per_tier):
            snap = per_tier[tier]
            if not snap["count"]:
                continue
            cumulative = 0
            for edge, count in snap["buckets"].items():
                cumulative += count
                lines.append(
                    f'{name}_bucket{{tier="{tier}",le="{edge}"}} {cumulative}'
                )
            if "+Inf" not in snap["buckets"]:
                lines.append(
                    f'{name}_bucket{{tier="{tier}",le="+Inf"}} {cumulative}'
                )
            lines.append(f'{name}_sum{{tier="{tier}"}} {snap["sum"]}')
            lines.append(f'{name}_count{{tier="{tier}"}} {snap["count"]}')
        return lines


def start_metrics_http(metrics: ServiceMetrics, counters_fn,
                       info: Optional[dict] = None,
                       host: str = "127.0.0.1",
                       port: int = 0) -> ThreadingHTTPServer:
    """Serve ``GET /metrics`` in a daemon thread; returns the server
    (``.server_address[1]`` has the bound port; call ``.shutdown()`` to
    stop).  ``counters_fn`` is called per scrape so the gauges are live.
    """

    class _Handler(BaseHTTPRequestHandler):
        def do_GET(self):  # noqa: N802 - stdlib handler API
            if self.path.rstrip("/") not in ("", "/metrics"):
                self.send_error(404)
                return
            body = metrics.render_prometheus(
                counters=counters_fn(), info=info
            ).encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type",
                             "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, fmt, *args):  # silence per-request stderr
            pass

    server = ThreadingHTTPServer((host, port), _Handler)
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-metrics", daemon=True)
    thread.start()
    return server
