"""Blocking client for the sweep service.

One :class:`ServiceClient` wraps one TCP connection speaking the frame
protocol of :mod:`repro.telemetry.wire`.  The client is synchronous and
single-request (it does not pipeline): each call sends one request frame
and reads response frames until the matching terminal frame arrives.
Concurrency across clients is the server's job — open one client per
thread/process and let the future-per-hash table collapse duplicate
work.

Connecting retries with bounded exponential backoff (``retry_delay``
doubling up to ``retry_max_delay`` — jitterless, so the schedule is
deterministic and testable) and raises
:class:`~repro.errors.ServiceUnavailable` once the budget is spent.

Tracing (wire v2): pass ``trace=True`` to ``submit``/``sweep`` and the
client mints a deterministic trace id — ``sha256(request digest :
submission counter)`` — that the server threads through every
resolution tier and stamps onto the served result copy
(``RunResult.trace_id``).  Closed spans stream back as ``span`` frames
and land on :attr:`SweepOutcome.spans`.

>>> from repro.service import ServiceClient
>>> with ServiceClient(port=7341) as client:          # doctest: +SKIP
...     result, source = client.submit(spec)
...     outcome = client.sweep(workloads=["WL-6"],
...                            scenarios=["all_bank", "codesign"])
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.results import RunResult
from repro.core.runspec import RunSpec
from repro.errors import (
    MonitorError,
    ServiceError,
    ServiceUnavailable,
    WireError,
)
from repro.telemetry.events import SpanEvent, TraceEvent
from repro.telemetry.wire import decode_frame, encode_frame
from repro.tracing import mint_trace_id, request_digest

from repro.service.server import DEFAULT_PORT

#: ``on_event`` callback signature: (event payload dict, job hash).
EventCallback = Callable[[dict, Optional[str]], None]

#: ``on_span`` callback signature: one closed span as it streams in.
SpanCallback = Callable[[SpanEvent], None]


def backoff_schedule(
    retries: int, base: float, cap: float
) -> list[float]:
    """The deterministic connect-retry delays: ``base`` doubling per
    attempt, clipped at ``cap``.  No jitter — tests assert the exact
    schedule, and a local service has no thundering herd to spread."""
    return [min(cap, base * (2 ** i)) for i in range(retries)]


@dataclass
class SweepOutcome:
    """Everything a sweep submission returned.

    ``results`` is keyed by spec content hash; ``jobs`` preserves the
    server's submission order; ``sources`` records how each job was
    answered (``executed``/``live``/``cache``/``memo``/``dedup``);
    ``errors`` maps failed jobs to their error messages.  For traced
    submissions, ``trace`` is the minted trace id and ``spans`` holds
    the streamed :class:`~repro.telemetry.events.SpanEvent` records in
    arrival order.
    """

    jobs: list[str] = field(default_factory=list)
    results: dict[str, RunResult] = field(default_factory=dict)
    specs: dict[str, dict] = field(default_factory=dict)
    sources: dict[str, str] = field(default_factory=dict)
    errors: dict[str, str] = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    trace: Optional[str] = None
    spans: list[SpanEvent] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def in_order(self) -> list[RunResult]:
        """Results in submission order (failed jobs omitted)."""
        return [
            self.results[job] for job in self.jobs if job in self.results
        ]


class ServiceClient:
    """Line-frame client over one blocking TCP connection."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: Optional[float] = None,
        connect_retries: int = 0,
        retry_delay: float = 0.2,
        retry_max_delay: float = 2.0,
    ):
        self.host = host
        self.port = port
        delays = backoff_schedule(connect_retries, retry_delay,
                                  retry_max_delay)
        last_error: Optional[Exception] = None
        for attempt in range(connect_retries + 1):
            try:
                self._sock = socket.create_connection(
                    (host, port), timeout=timeout
                )
                break
            except OSError as exc:
                last_error = exc
                if attempt < connect_retries:
                    time.sleep(delays[attempt])
        else:
            raise ServiceUnavailable(
                f"cannot connect to repro service at {host}:{port} "
                f"after {connect_retries + 1} attempt(s): {last_error}"
            )
        self._file = self._sock.makefile("rb")
        self._next_id = 0
        self._trace_seq = 0

    # -- transport -------------------------------------------------------------

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _send(self, frame: dict) -> int:
        self._next_id += 1
        frame = {"id": self._next_id, **frame}
        self._sock.sendall(encode_frame(frame))
        return self._next_id

    def _recv(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ServiceError(
                f"connection to {self.host}:{self.port} closed by server"
            )
        return decode_frame(line)

    def _recv_for(self, rid: int) -> dict:
        """Next frame addressed to request *rid* (others are dropped —
        this client never pipelines, so there should be none)."""
        while True:
            frame = self._recv()
            if frame.get("id") in (rid, None):
                return frame

    def _mint_trace(self, request: dict) -> str:
        """Deterministic per-submission trace id (see module docstring)."""
        self._trace_seq += 1
        return mint_trace_id(request_digest(request), self._trace_seq)

    # -- small ops -------------------------------------------------------------

    def ping(self) -> dict:
        """Server hello: wire/spec/result schema versions and backend."""
        rid = self._send({"op": "ping"})
        frame = self._recv_for(rid)
        if frame.get("type") != "pong":
            raise WireError(f"expected pong, got {frame.get('type')!r}")
        return frame

    def status(self) -> dict:
        """The service counter snapshot (dedup/memo/disk/executed)."""
        rid = self._send({"op": "status"})
        frame = self._recv_for(rid)
        if frame.get("type") != "status":
            raise WireError(f"expected status, got {frame.get('type')!r}")
        return frame["counters"]

    def metrics(self) -> dict:
        """The server's metrics frame: lifetime ``counters``, the
        gate-safe ``deterministic`` snapshot (tier hits + simulated-
        cycles histograms), the artifact-only ``wall`` histograms,
        ``recent_spans``, and the Prometheus ``text`` exposition."""
        rid = self._send({"op": "metrics"})
        frame = self._recv_for(rid)
        if frame.get("type") != "metrics":
            raise WireError(f"expected metrics, got {frame.get('type')!r}")
        return frame

    def shutdown(self) -> None:
        """Ask the server to stop serving (acknowledged, then closed)."""
        rid = self._send({"op": "shutdown"})
        self._recv_for(rid)

    # -- submissions -----------------------------------------------------------

    def submit(
        self,
        spec: RunSpec,
        stream: bool = False,
        monitors: Optional[str] = None,
        on_event: Optional[EventCallback] = None,
        trace: bool = False,
        on_span: Optional[SpanCallback] = None,
    ) -> tuple[RunResult, str]:
        """Submit one spec; blocks until its result frame arrives.

        Returns ``(result, source)``.  With ``stream=True`` each
        telemetry frame's event payload is passed to ``on_event`` as it
        arrives.  With ``trace=True`` the submission is traced
        end-to-end and the result carries ``trace_id``.  A
        strict-monitored violation raises
        :class:`~repro.errors.MonitorError`; other server-side failures
        raise :class:`~repro.errors.ServiceError`.
        """
        request = {
            "op": "submit",
            "spec": spec.to_dict(),
            "stream": bool(stream or on_event),
            "monitors": monitors,
        }
        outcome = self._submit_frames(
            request,
            on_event=on_event,
            on_span=on_span,
            trace=trace or on_span is not None,
        )
        if outcome.errors:
            job, message = next(iter(outcome.errors.items()))
            if outcome.sources.get(job) == "monitor_error":
                raise MonitorError(message)
            raise ServiceError(message)
        job = outcome.jobs[0]
        return outcome.results[job], outcome.sources[job]

    def sweep(
        self,
        specs: Optional[list[RunSpec]] = None,
        workloads: Optional[list[str]] = None,
        scenarios: Optional[list[str]] = None,
        options: Optional[dict] = None,
        stream: bool = False,
        monitors: Optional[str] = None,
        on_event: Optional[EventCallback] = None,
        on_result: Optional[Callable[[str, RunResult, str], None]] = None,
        trace: bool = False,
        on_span: Optional[SpanCallback] = None,
    ) -> SweepOutcome:
        """Submit a whole sweep; blocks until the ``done`` frame.

        Either pass explicit ``specs`` or let the server decompose a
        ``workloads`` x ``scenarios`` matrix (``options`` forwards
        keyword arguments to
        :func:`repro.core.simulator.sweep_specs`).  ``on_result`` fires
        per shard in completion order.  With ``trace=True`` every shard
        is traced under one trace id (``outcome.trace``/``.spans``).
        """
        frame: dict = {"op": "sweep", "stream": bool(stream or on_event)}
        if monitors is not None:
            frame["monitors"] = monitors
        if specs is not None:
            frame["specs"] = [spec.to_dict() for spec in specs]
        else:
            frame["workloads"] = list(workloads or [])
            frame["scenarios"] = list(scenarios or [])
            if options:
                frame["options"] = options
        return self._submit_frames(
            frame,
            on_event=on_event,
            on_result=on_result,
            on_span=on_span,
            trace=trace or on_span is not None,
        )

    def _submit_frames(
        self,
        request: dict,
        on_event: Optional[EventCallback] = None,
        on_result=None,
        on_span: Optional[SpanCallback] = None,
        trace: bool = False,
    ) -> SweepOutcome:
        outcome = SweepOutcome()
        if trace:
            outcome.trace = self._mint_trace(request)
            request = {**request, "trace": outcome.trace}
        rid = self._send(request)
        while True:
            frame = self._recv_for(rid)
            kind = frame.get("type")
            if kind == "ack":
                outcome.jobs = list(frame.get("jobs", []))
            elif kind == "telemetry":
                if on_event is not None:
                    on_event(frame["event"], frame.get("job"))
            elif kind == "span":
                span = TraceEvent.from_dict(frame["span"])
                outcome.spans.append(span)
                if on_span is not None:
                    on_span(span)
            elif kind == "result":
                job = frame["job"]
                result = RunResult.from_dict(frame["result"])
                outcome.results[job] = result
                outcome.specs[job] = frame.get("spec", {})
                outcome.sources[job] = frame.get("source", "?")
                if on_result is not None:
                    on_result(job, result, outcome.sources[job])
            elif kind == "error":
                job = frame.get("job")
                message = frame.get("error", "unknown server error")
                if job is None:
                    # Request-level failure: no per-job frames follow.
                    raise ServiceError(message)
                outcome.errors[job] = message
                outcome.sources.setdefault(
                    job,
                    "monitor_error"
                    if frame.get("code") == "monitor"
                    else "error",
                )
            elif kind == "done":
                outcome.counters = frame.get("counters", {})
                for job, source in frame.get("sources", {}).items():
                    outcome.sources.setdefault(job, source)
                return outcome
            else:
                raise WireError(f"unexpected frame type {kind!r}")
