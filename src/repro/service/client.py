"""Blocking client for the sweep service.

One :class:`ServiceClient` wraps one TCP connection speaking the frame
protocol of :mod:`repro.telemetry.wire`.  The client is synchronous and
single-request (it does not pipeline): each call sends one request frame
and reads response frames until the matching terminal frame arrives.
Concurrency across clients is the server's job — open one client per
thread/process and let the future-per-hash table collapse duplicate
work.

>>> from repro.service import ServiceClient
>>> with ServiceClient(port=7341) as client:          # doctest: +SKIP
...     result, source = client.submit(spec)
...     outcome = client.sweep(workloads=["WL-6"],
...                            scenarios=["all_bank", "codesign"])
"""

from __future__ import annotations

import socket
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.results import RunResult
from repro.core.runspec import RunSpec
from repro.errors import MonitorError, ServiceError, WireError
from repro.telemetry.wire import decode_frame, encode_frame

from repro.service.server import DEFAULT_PORT

#: ``on_event`` callback signature: (event payload dict, job hash).
EventCallback = Callable[[dict, Optional[str]], None]


@dataclass
class SweepOutcome:
    """Everything a sweep submission returned.

    ``results`` is keyed by spec content hash; ``jobs`` preserves the
    server's submission order; ``sources`` records how each job was
    answered (``executed``/``live``/``cache``/``memo``/``dedup``);
    ``errors`` maps failed jobs to their error messages.
    """

    jobs: list[str] = field(default_factory=list)
    results: dict[str, RunResult] = field(default_factory=dict)
    specs: dict[str, dict] = field(default_factory=dict)
    sources: dict[str, str] = field(default_factory=dict)
    errors: dict[str, str] = field(default_factory=dict)
    counters: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.errors

    def in_order(self) -> list[RunResult]:
        """Results in submission order (failed jobs omitted)."""
        return [
            self.results[job] for job in self.jobs if job in self.results
        ]


class ServiceClient:
    """Line-frame client over one blocking TCP connection."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: Optional[float] = None,
        connect_retries: int = 0,
        retry_delay: float = 0.2,
    ):
        self.host = host
        self.port = port
        last_error: Optional[Exception] = None
        for attempt in range(connect_retries + 1):
            try:
                self._sock = socket.create_connection(
                    (host, port), timeout=timeout
                )
                break
            except OSError as exc:
                last_error = exc
                if attempt < connect_retries:
                    import time

                    time.sleep(retry_delay)
        else:
            raise ServiceError(
                f"cannot connect to repro service at {host}:{port}: "
                f"{last_error}"
            )
        self._file = self._sock.makefile("rb")
        self._next_id = 0

    # -- transport -------------------------------------------------------------

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _send(self, frame: dict) -> int:
        self._next_id += 1
        frame = {"id": self._next_id, **frame}
        self._sock.sendall(encode_frame(frame))
        return self._next_id

    def _recv(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ServiceError(
                f"connection to {self.host}:{self.port} closed by server"
            )
        return decode_frame(line)

    def _recv_for(self, rid: int) -> dict:
        """Next frame addressed to request *rid* (others are dropped —
        this client never pipelines, so there should be none)."""
        while True:
            frame = self._recv()
            if frame.get("id") in (rid, None):
                return frame

    # -- small ops -------------------------------------------------------------

    def ping(self) -> dict:
        """Server hello: wire/spec/result schema versions and backend."""
        rid = self._send({"op": "ping"})
        frame = self._recv_for(rid)
        if frame.get("type") != "pong":
            raise WireError(f"expected pong, got {frame.get('type')!r}")
        return frame

    def status(self) -> dict:
        """The service counter snapshot (dedup/memo/disk/executed)."""
        rid = self._send({"op": "status"})
        frame = self._recv_for(rid)
        if frame.get("type") != "status":
            raise WireError(f"expected status, got {frame.get('type')!r}")
        return frame["counters"]

    def shutdown(self) -> None:
        """Ask the server to stop serving (acknowledged, then closed)."""
        rid = self._send({"op": "shutdown"})
        self._recv_for(rid)

    # -- submissions -----------------------------------------------------------

    def submit(
        self,
        spec: RunSpec,
        stream: bool = False,
        monitors: Optional[str] = None,
        on_event: Optional[EventCallback] = None,
    ) -> tuple[RunResult, str]:
        """Submit one spec; blocks until its result frame arrives.

        Returns ``(result, source)``.  With ``stream=True`` each
        telemetry frame's event payload is passed to ``on_event`` as it
        arrives.  A strict-monitored violation raises
        :class:`~repro.errors.MonitorError`; other server-side failures
        raise :class:`~repro.errors.ServiceError`.
        """
        outcome = self._submit_frames(
            {
                "op": "submit",
                "spec": spec.to_dict(),
                "stream": bool(stream or on_event),
                "monitors": monitors,
            },
            on_event=on_event,
        )
        if outcome.errors:
            job, message = next(iter(outcome.errors.items()))
            if outcome.sources.get(job) == "monitor_error":
                raise MonitorError(message)
            raise ServiceError(message)
        job = outcome.jobs[0]
        return outcome.results[job], outcome.sources[job]

    def sweep(
        self,
        specs: Optional[list[RunSpec]] = None,
        workloads: Optional[list[str]] = None,
        scenarios: Optional[list[str]] = None,
        options: Optional[dict] = None,
        stream: bool = False,
        monitors: Optional[str] = None,
        on_event: Optional[EventCallback] = None,
        on_result: Optional[Callable[[str, RunResult, str], None]] = None,
    ) -> SweepOutcome:
        """Submit a whole sweep; blocks until the ``done`` frame.

        Either pass explicit ``specs`` or let the server decompose a
        ``workloads`` x ``scenarios`` matrix (``options`` forwards
        keyword arguments to
        :func:`repro.core.simulator.sweep_specs`).  ``on_result`` fires
        per shard in completion order.
        """
        frame: dict = {"op": "sweep", "stream": bool(stream or on_event)}
        if monitors is not None:
            frame["monitors"] = monitors
        if specs is not None:
            frame["specs"] = [spec.to_dict() for spec in specs]
        else:
            frame["workloads"] = list(workloads or [])
            frame["scenarios"] = list(scenarios or [])
            if options:
                frame["options"] = options
        return self._submit_frames(
            frame, on_event=on_event, on_result=on_result
        )

    def _submit_frames(
        self,
        request: dict,
        on_event: Optional[EventCallback] = None,
        on_result=None,
    ) -> SweepOutcome:
        rid = self._send(request)
        outcome = SweepOutcome()
        while True:
            frame = self._recv_for(rid)
            kind = frame.get("type")
            if kind == "ack":
                outcome.jobs = list(frame.get("jobs", []))
            elif kind == "telemetry":
                if on_event is not None:
                    on_event(frame["event"], frame.get("job"))
            elif kind == "result":
                job = frame["job"]
                result = RunResult.from_dict(frame["result"])
                outcome.results[job] = result
                outcome.specs[job] = frame.get("spec", {})
                outcome.sources[job] = frame.get("source", "?")
                if on_result is not None:
                    on_result(job, result, outcome.sources[job])
            elif kind == "error":
                job = frame.get("job")
                message = frame.get("error", "unknown server error")
                if job is None:
                    # Request-level failure: no per-job frames follow.
                    raise ServiceError(message)
                outcome.errors[job] = message
                outcome.sources.setdefault(
                    job,
                    "monitor_error"
                    if frame.get("code") == "monitor"
                    else "error",
                )
            elif kind == "done":
                outcome.counters = frame.get("counters", {})
                for job, source in frame.get("sources", {}).items():
                    outcome.sources.setdefault(job, source)
                return outcome
            else:
                raise WireError(f"unexpected frame type {kind!r}")
