"""Sweep-as-a-service: a cache-backed simulation server and its client.

The content-hashed :class:`~repro.core.runspec.RunSpec` (PR 1) is a
perfect dedup key — this package puts an async job API in front of
:func:`repro.core.simulator.run_spec` so that *one* simulation runs per
unique spec no matter how many clients ask:

:mod:`repro.service.backends`
    The :class:`WorkerBackend` execution seam — inline (tests), thread
    pool, process pool (generalizing the
    :class:`~repro.experiments.runner.SweepRunner` fan-out), and a
    remote stub for multi-host dispatch later.
:mod:`repro.service.server`
    :class:`SweepService` (job table, future-per-hash in-flight dedup,
    memo + disk-cache tiers, warm-start via the PR 6
    :class:`~repro.core.checkpoint.CheckpointStore`) and the asyncio
    socket front-end :class:`ServiceServer` speaking the line-oriented
    frame protocol of :mod:`repro.telemetry.wire`.
:mod:`repro.service.client`
    :class:`ServiceClient`, the blocking client used by
    ``python -m repro submit`` and :func:`repro.api.submit`.
:mod:`repro.service.metrics`
    :class:`ServiceMetrics` — per-tier hit counts and fixed-bucket
    latency histograms, with a Prometheus text exposition served both
    in-band (the ``metrics`` op) and over HTTP (``--metrics-port``).

See ``docs/SERVICE.md`` for the protocol and dedup semantics, and
``docs/OBSERVABILITY.md`` §8 for tracing the serving path.
"""

from repro.service.backends import (
    BACKENDS,
    InlineBackend,
    ProcessPoolBackend,
    RemoteBackend,
    ThreadBackend,
    WorkerBackend,
    make_backend,
)
from repro.service.client import ServiceClient, SweepOutcome, backoff_schedule
from repro.service.metrics import ServiceMetrics, start_metrics_http
from repro.service.server import ServiceServer, SweepService, serve_in_thread

__all__ = [
    "BACKENDS",
    "InlineBackend",
    "ProcessPoolBackend",
    "RemoteBackend",
    "ServiceClient",
    "ServiceMetrics",
    "ServiceServer",
    "SweepOutcome",
    "SweepService",
    "ThreadBackend",
    "WorkerBackend",
    "backoff_schedule",
    "make_backend",
    "serve_in_thread",
    "start_metrics_http",
]
