"""Sweep-as-a-service: a cache-backed simulation server and its client.

The content-hashed :class:`~repro.core.runspec.RunSpec` (PR 1) is a
perfect dedup key — this package puts an async job API in front of
:func:`repro.core.simulator.run_spec` so that *one* simulation runs per
unique spec no matter how many clients ask:

:mod:`repro.service.backends`
    The :class:`WorkerBackend` execution seam — inline (tests), thread
    pool, process pool (generalizing the
    :class:`~repro.experiments.runner.SweepRunner` fan-out), and a
    remote stub for multi-host dispatch later.
:mod:`repro.service.server`
    :class:`SweepService` (job table, future-per-hash in-flight dedup,
    memo + disk-cache tiers, warm-start via the PR 6
    :class:`~repro.core.checkpoint.CheckpointStore`) and the asyncio
    socket front-end :class:`ServiceServer` speaking the line-oriented
    frame protocol of :mod:`repro.telemetry.wire`.
:mod:`repro.service.client`
    :class:`ServiceClient`, the blocking client used by
    ``python -m repro submit`` and :func:`repro.api.submit`.

See ``docs/SERVICE.md`` for the protocol and dedup semantics.
"""

from repro.service.backends import (
    BACKENDS,
    InlineBackend,
    ProcessPoolBackend,
    RemoteBackend,
    ThreadBackend,
    WorkerBackend,
    make_backend,
)
from repro.service.client import ServiceClient, SweepOutcome
from repro.service.server import ServiceServer, SweepService, serve_in_thread

__all__ = [
    "BACKENDS",
    "InlineBackend",
    "ProcessPoolBackend",
    "RemoteBackend",
    "ServiceClient",
    "ServiceServer",
    "SweepOutcome",
    "SweepService",
    "ThreadBackend",
    "WorkerBackend",
    "make_backend",
    "serve_in_thread",
]
