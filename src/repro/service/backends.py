"""Worker backends: where the sweep service actually runs simulations.

The :class:`SweepService` decides *whether* a spec needs to run (dedup,
memo, disk cache); a :class:`WorkerBackend` decides *where*.  The
contract is deliberately tiny — ``submit(spec) -> Future[RunResult]`` —
so backends can range from "call it right here" to "ship it to another
host" without the service caring:

================================  ==========================================
Backend                           Use case
================================  ==========================================
:class:`InlineBackend`            Tests and single-shot tools: executes in
                                  the caller's thread, returns a resolved
                                  future.  Blocks the server's event loop
                                  while simulating.
:class:`ThreadBackend`            Default for a live server: keeps the
                                  event loop responsive (the simulator is
                                  pure Python, so threads trade latency for
                                  fairness, not true parallelism).
:class:`ProcessPoolBackend`       Real sweep fan-out: generalizes the
                                  :class:`~repro.experiments.runner.SweepRunner`
                                  ``ProcessPoolExecutor`` path to service
                                  jobs.  Specs and results cross the
                                  process boundary by serialization.
:class:`RemoteBackend`            Seam for multi-host dispatch.  Not yet
                                  implemented: constructing it records the
                                  target, submitting raises
                                  :class:`~repro.errors.ServiceError`.
================================  ==========================================

Every backend is constructed with an optional
:class:`~repro.core.checkpoint.CheckpointStore` that is forwarded to
:func:`repro.core.simulator.run_spec`, so warm-started specs sharing a
warm-up prefix reuse one checkpoint regardless of which worker runs them
(the store holds only a path and pickles across process pools).
"""

from __future__ import annotations

import functools
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Optional

from repro.core.checkpoint import CheckpointStore
from repro.core.results import RunResult
from repro.core.runspec import RunSpec
from repro.core.simulator import (
    build_system_from_spec,
    run_spec as execute_run_spec,
    warm_start_state,
)
from repro.errors import ServiceError
from repro.tracing import JobTrace


def traced_run_spec(
    spec: RunSpec,
    checkpoint_store: Optional[CheckpointStore],
    trace: JobTrace,
    parent: Optional[int] = None,
) -> RunResult:
    """:func:`~repro.core.simulator.run_spec` wrapped in tracing spans.

    Opens a ``run_spec`` root span (child of the service's ``execute``
    span via *parent*) and, on the warm-start path, a ``restore`` child
    covering the prefix snapshot fetch/replay.  The execution itself is
    step-for-step identical to the untraced ``run_spec`` — same build,
    same run call, same kwargs — so results stay bit-identical with
    tracing on.
    """
    with trace.span("run_spec", parent=parent) as root:
        if spec.warmup_scenario is not None:
            with trace.span("restore", parent=root.span_id) as restore:
                state, provenance = warm_start_state(spec, checkpoint_store)
                restore.set(detail=provenance)
            system = build_system_from_spec(spec)
            result = system.run(resume_state=state)
        else:
            system = build_system_from_spec(spec)
            result = system.run(
                num_windows=spec.num_windows,
                warmup_windows=spec.warmup_windows,
                sample_windows=spec.sample_windows,
            )
        root.set(cycles=result.simulated_cycles,
                 detail=spec.content_hash())
    return result


class WorkerBackend:
    """Execution seam: ``submit`` a spec, get a future for its result.

    Implementations must be safe to call from a single dispatching
    thread (the server's event loop); the returned future may complete
    on any thread.  ``close`` releases worker resources and is
    idempotent.
    """

    #: Registry name (set by subclasses; shown in ``status`` frames).
    name = "abstract"

    def submit(
        self,
        spec: RunSpec,
        trace: Optional[JobTrace] = None,
        parent: Optional[int] = None,
    ) -> "Future[RunResult]":
        """Run *spec*; with a :class:`~repro.tracing.JobTrace` the worker
        opens ``run_spec``/``restore`` spans parented under *parent*
        (the service's ``execute`` span)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release worker resources (default: nothing to do)."""

    def _execute(
        self,
        spec: RunSpec,
        trace: Optional[JobTrace] = None,
        parent: Optional[int] = None,
    ) -> RunResult:
        if trace is not None:
            return traced_run_spec(
                spec, self.checkpoint_store, trace, parent
            )
        return execute_run_spec(
            spec, checkpoint_store=self.checkpoint_store
        )

    def __init__(self, checkpoint_store: Optional[CheckpointStore] = None):
        self.checkpoint_store = checkpoint_store


class InlineBackend(WorkerBackend):
    """Runs the simulation synchronously inside ``submit``."""

    name = "inline"

    def submit(
        self,
        spec: RunSpec,
        trace: Optional[JobTrace] = None,
        parent: Optional[int] = None,
    ) -> "Future[RunResult]":
        future: Future = Future()
        try:
            future.set_result(self._execute(spec, trace, parent))
        except Exception as exc:  # surfaced through the future, like a pool
            future.set_exception(exc)
        return future


class ThreadBackend(WorkerBackend):
    """Runs simulations on a thread pool (lazy, ``jobs`` workers)."""

    name = "thread"

    def __init__(
        self,
        jobs: int = 4,
        checkpoint_store: Optional[CheckpointStore] = None,
    ):
        super().__init__(checkpoint_store)
        if jobs < 1:
            raise ServiceError(f"ThreadBackend: jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self._pool: Optional[ThreadPoolExecutor] = None

    def submit(
        self,
        spec: RunSpec,
        trace: Optional[JobTrace] = None,
        parent: Optional[int] = None,
    ) -> "Future[RunResult]":
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.jobs, thread_name_prefix="repro-svc"
            )
        return self._pool.submit(self._execute, spec, trace, parent)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessPoolBackend(WorkerBackend):
    """Runs simulations on a lazy ``ProcessPoolExecutor``.

    The worker function is a pickled partial of ``run_spec`` with the
    checkpoint store bound — exactly the shape
    :meth:`~repro.experiments.runner.SweepRunner.prefetch` ships to its
    pool, so warm-start prefixes are shared on disk across workers.

    Worker-side spans are skipped on this backend: a
    :class:`~repro.tracing.JobTrace` holds a live emit callable and
    does not pickle.  The service-level ``execute`` span still bounds
    the whole remote execution, so traces stay causally complete —
    just without the in-worker breakdown.
    """

    name = "process"

    def __init__(
        self,
        jobs: Optional[int] = None,
        checkpoint_store: Optional[CheckpointStore] = None,
    ):
        super().__init__(checkpoint_store)
        if jobs is None:
            from repro.experiments.runner import default_jobs

            jobs = default_jobs()
        if jobs < 1:
            raise ServiceError(
                f"ProcessPoolBackend: jobs must be >= 1, got {jobs}"
            )
        self.jobs = jobs
        self._pool: Optional[ProcessPoolExecutor] = None

    def submit(
        self,
        spec: RunSpec,
        trace: Optional[JobTrace] = None,
        parent: Optional[int] = None,
    ) -> "Future[RunResult]":
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        execute = functools.partial(
            execute_run_spec, checkpoint_store=self.checkpoint_store
        )
        return self._pool.submit(execute, spec)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class RemoteBackend(WorkerBackend):
    """Multi-host dispatch seam (not yet implemented).

    The constructor accepts and records the remote target so deployment
    wiring can be written and tested today; ``submit`` raises
    :class:`~repro.errors.ServiceError` until a remote executor lands.
    The intended contract is unchanged from the local backends: ship the
    spec's canonical dict, get back the result's canonical dict —
    content hashes make the exchange verifiable end-to-end.
    """

    name = "remote"

    def __init__(
        self,
        target: str,
        checkpoint_store: Optional[CheckpointStore] = None,
    ):
        super().__init__(checkpoint_store)
        self.target = target

    def submit(
        self,
        spec: RunSpec,
        trace: Optional[JobTrace] = None,
        parent: Optional[int] = None,
    ) -> "Future[RunResult]":
        raise ServiceError(
            f"RemoteBackend({self.target!r}): multi-host dispatch is not "
            "implemented yet; use the 'thread' or 'process' backend"
        )


#: Name -> constructor for the ``serve --backend`` CLI flag.
BACKENDS = {
    "inline": InlineBackend,
    "thread": ThreadBackend,
    "process": ProcessPoolBackend,
}


def make_backend(
    name: str,
    jobs: Optional[int] = None,
    checkpoint_store: Optional[CheckpointStore] = None,
) -> WorkerBackend:
    """Instantiate a registered backend by name."""
    if name not in BACKENDS:
        raise ServiceError(
            f"unknown backend {name!r}; known: {sorted(BACKENDS)}"
        )
    if name == "inline":
        return InlineBackend(checkpoint_store=checkpoint_store)
    if name == "thread":
        return ThreadBackend(
            jobs=jobs if jobs is not None else 4,
            checkpoint_store=checkpoint_store,
        )
    return ProcessPoolBackend(jobs=jobs, checkpoint_store=checkpoint_store)
