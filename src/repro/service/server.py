"""The sweep service: async job API in front of ``run_spec()``.

Two layers, separable for testing:

* :class:`SweepService` — the job engine.  ``await resolve(spec, ...)``
  answers one spec through four tiers: in-memory memo, **future-per-hash
  in-flight dedup** (concurrent identical submissions collapse onto one
  running job), the persistent content-addressed disk cache shared with
  :class:`~repro.experiments.runner.SweepRunner`, and finally execution
  on a pluggable :class:`~repro.service.backends.WorkerBackend`.
  Warm-started specs reuse the service-wide
  :class:`~repro.core.checkpoint.CheckpointStore`.
* :class:`ServiceServer` — the asyncio socket front-end speaking the
  line-oriented frame protocol of :mod:`repro.telemetry.wire`.

Dedup semantics (the concurrent-dedup guarantee)
------------------------------------------------
Submissions are keyed by the spec's content hash (plus the monitor mode
for monitored jobs).  For a given key, at most one simulation is ever
in flight; every other submission observes one of:

``memo``
    already computed this server lifetime (also covers results adopted
    from streamed live runs);
``dedup``
    currently running — the submission awaits the same future;
``cache``
    present in the on-disk result cache (possibly from another process);
``executed`` / ``live``
    this submission started the simulation (on the backend / in-process
    with telemetry attached).

Because ``run_spec`` is a pure function of the spec, every tier returns
the *same* canonical result payload — a served result is byte-identical
to a direct local ``run_spec()`` of the same spec.

Telemetry streaming and monitors need a **live** event stream, which a
backend worker or a cache entry cannot provide:

* ``stream=True`` forces a fresh in-process run (events flow to the
  client through a :class:`~repro.telemetry.wire.WireSink`); its result
  still lands in the memo and the disk cache, and concurrent plain
  submissions of the same spec dedup against it.
* monitored jobs run in-process under
  :func:`repro.obs.monitors.run_spec_with_monitors`; their results are
  memoized under a monitor-qualified key and never written to the disk
  cache (the cache stores unmonitored payloads only).  Monitored
  resolutions count under their own ``monitored_*`` counters so the
  plain counters stay attributable to plain traffic.

Observability (PR 10)
---------------------
Every resolution is observed by an always-on
:class:`~repro.service.metrics.ServiceMetrics` (per-tier hit counts,
simulated-cycles histograms, wall-latency histograms).  When the client
opted into tracing (a ``trace`` id on the request frame, wire v2), the
service opens one span per resolution step — ``resolve`` root, then
``memo``/``dedup``/``cache``/``execute``/``live`` children, with
``run_spec``/``restore`` grandchildren inside the worker — and stamps
the served result copy with the trace id (the memo and the disk cache
always store the *unstamped* payload, so caching stays byte-identical
with tracing on or off).  A dedup-joined traced submission is stamped
with the trace id of the submission that *started* the execution
(``_trace_ids``), which is the causal truth the spans tell.
"""

from __future__ import annotations

import asyncio
import dataclasses
import functools
import threading
from collections import deque
from typing import Callable, Optional

from repro.core.checkpoint import CheckpointStore
from repro.core.results import RunResult
from repro.core.runspec import RunSpec
from repro.core.simulator import run_spec as execute_run_spec, sweep_specs
from repro.errors import ConfigError, MonitorError, ReproError, ServiceError
from repro.experiments.cache import ResultCache
from repro.service.metrics import ServiceMetrics
from repro.telemetry.events import SpanEvent
from repro.telemetry.hub import Telemetry
from repro.telemetry.wire import (
    SUPPORTED_WIRE_SCHEMAS,
    WIRE_SCHEMA,
    WireSink,
    decode_frame,
    encode_frame,
    span_frame,
)
from repro.tracing import JobTrace, StructuredLog, monotonic_us

#: Default TCP port of ``python -m repro serve``.
DEFAULT_PORT = 7341

#: Closed spans kept in memory for ``metrics``/``obs top`` (newest last).
RECENT_SPANS = 64


class SweepService:
    """Job table + dedup + cache tiers over a worker backend."""

    def __init__(
        self,
        backend=None,
        cache_dir=None,
        use_cache: bool = True,
        log: Optional[StructuredLog] = None,
        span_sink=None,
    ):
        self.cache = ResultCache(cache_dir) if use_cache else None
        self.checkpoint_store = (
            CheckpointStore(cache_dir) if use_cache else None
        )
        if backend is None:
            from repro.service.backends import InlineBackend

            backend = InlineBackend(checkpoint_store=self.checkpoint_store)
        elif backend.checkpoint_store is None:
            # A backend constructed without its own store adopts the
            # service-wide one, so warm-start prefixes are shared no
            # matter which worker runs them.
            backend.checkpoint_store = self.checkpoint_store
        self.backend = backend
        self.log = log
        #: Optional :class:`~repro.telemetry.sinks.EventSink` receiving
        #: every closed span (``serve --span-jsonl`` / Chrome export).
        self.span_sink = span_sink
        #: Per-tier latency histograms and hit counts (always on).
        self.metrics = ServiceMetrics()
        #: In-flight jobs: job key -> asyncio.Future[RunResult].
        self._jobs: dict[str, asyncio.Future] = {}
        #: Completed jobs this server lifetime: job key -> RunResult.
        self._memo: dict[str, RunResult] = {}
        #: Trace id of the traced submission that started each job
        #: (lives as long as the memo entry it annotates).
        self._trace_ids: dict[str, str] = {}
        #: Newest closed spans, for the ``metrics`` op / ``obs top``.
        self.recent_spans: deque[SpanEvent] = deque(maxlen=RECENT_SPANS)
        #: Plain (unmonitored) simulations started (backend + live).
        self.runs_executed = 0
        #: Plain submissions that attached to an already-running job.
        self.dedup_hits = 0
        #: Plain submissions answered from the in-memory memo.
        self.memo_hits = 0
        #: Plain live in-process runs (streamed).
        self.live_runs = 0
        #: Monitored simulations started (always live, never cached).
        self.monitored_runs = 0
        #: Monitored submissions answered from the memo.
        self.monitored_memo_hits = 0
        #: Monitored submissions that attached to a running job.
        self.monitored_dedup_hits = 0

    # -- introspection ---------------------------------------------------------

    def counters(self) -> dict:
        """Deterministic counter snapshot (the ``status`` frame body).

        Monitored jobs (keyed ``<hash>+monitors:<mode>``) count under
        ``monitored_*`` so per-tier attribution survives mixing plain
        and monitored traffic — these values match the ``metrics``
        exposition exactly (``executed + live == runs_executed`` etc.).
        """
        return {
            "runs_executed": self.runs_executed,
            "dedup_hits": self.dedup_hits,
            "memo_hits": self.memo_hits,
            "disk_hits": self.cache.hits if self.cache is not None else 0,
            "live_runs": self.live_runs,
            "monitored_runs": self.monitored_runs,
            "monitored_memo_hits": self.monitored_memo_hits,
            "monitored_dedup_hits": self.monitored_dedup_hits,
            "inflight": len(self._jobs),
            "backend": self.backend.name,
            "caching": self.cache is not None,
        }

    def record_span(self, event: SpanEvent) -> None:
        """Retain one closed span and forward it to the span sink."""
        self.recent_spans.append(event)
        if self.span_sink is not None:
            self.span_sink.emit(event)

    @staticmethod
    def job_key(spec: RunSpec, monitors: Optional[str] = None) -> str:
        """Dedup key: content hash, qualified by the monitor mode.

        Monitored results carry ``monitor_violations`` in their payload,
        so they must never alias (or be served for) a plain submission.
        """
        key = spec.content_hash()
        return key if monitors is None else f"{key}+monitors:{monitors}"

    # -- resolution ------------------------------------------------------------

    async def resolve(
        self,
        spec: RunSpec,
        monitors: Optional[str] = None,
        event_cb: Optional[Callable[[dict], None]] = None,
        trace: Optional[JobTrace] = None,
    ) -> tuple[RunResult, str]:
        """Answer one spec; returns ``(result, source)``.

        ``monitors`` is ``None``, ``"collect"`` or ``"strict"``;
        ``event_cb`` (when set) receives one telemetry frame dict per
        event of a fresh live run, called on the event loop thread.
        ``trace`` (when set) opens per-tier spans and stamps the served
        result copy with its trace id.
        """
        if monitors not in (None, "collect", "strict"):
            raise ServiceError(f"unknown monitor mode {monitors!r}")
        if monitors is not None and spec.warmup_scenario is not None:
            raise ServiceError(
                "monitors are not supported for warm-started specs "
                "(the warm-up prefix runs without an event stream)"
            )
        key = self.job_key(spec, monitors)
        t0 = monotonic_us()
        root = trace.span("resolve") if trace is not None else None
        try:
            result, source = await self._resolve_tiers(
                key, spec, monitors, event_cb, trace, root
            )
        except BaseException as exc:
            if root is not None:
                root.set(detail=f"error:{type(exc).__name__}").close()
            if self.log is not None:
                self.log.error(
                    "resolve failed",
                    trace=trace.trace_id if trace is not None else None,
                    job=key,
                    error=str(exc),
                )
            raise
        tier = source if monitors is None else f"monitored_{source}"
        self.metrics.observe(
            tier, result.simulated_cycles, max(0, monotonic_us() - t0)
        )
        if root is not None:
            root.set(cycles=result.simulated_cycles, detail=tier).close()
        if self.log is not None:
            self.log.info(
                "served",
                trace=trace.trace_id if trace is not None else None,
                job=key,
                tier=tier,
                cycles=result.simulated_cycles,
            )
        if trace is not None:
            # The stamped copy is what the client sees; the memo and
            # the disk cache keep the unstamped original.  A dedup join
            # inherits the trace id of the execution it attached to.
            result = dataclasses.replace(
                result, trace_id=self._trace_ids.get(key, trace.trace_id)
            )
        return result, source

    async def _resolve_tiers(
        self,
        key: str,
        spec: RunSpec,
        monitors: Optional[str],
        event_cb: Optional[Callable[[dict], None]],
        trace: Optional[JobTrace],
        root,
    ) -> tuple[RunResult, str]:
        if event_cb is not None:
            # Streaming needs the complete event stream of a fresh run;
            # an in-flight job or cached result cannot provide it.
            return await self._run_live(
                key, spec, monitors, event_cb, trace, root
            )

        memo = self._memo.get(key)
        if memo is not None:
            if monitors is None:
                self.memo_hits += 1
            else:
                self.monitored_memo_hits += 1
            if trace is not None:
                trace.span("memo", parent=root.span_id).set(
                    cycles=memo.simulated_cycles, detail=key
                ).close()
            return memo, "memo"
        inflight = self._jobs.get(key)
        if inflight is not None:
            if monitors is None:
                self.dedup_hits += 1
            else:
                self.monitored_dedup_hits += 1
            if trace is None:
                return await inflight, "dedup"
            span = trace.span("dedup", parent=root.span_id)
            try:
                result = await inflight
            except BaseException:
                span.set(detail="error").close()
                raise
            span.set(cycles=result.simulated_cycles, detail=key).close()
            return result, "dedup"
        if self.cache is not None and monitors is None:
            cached = self.cache.get(spec.content_hash())
            if cached is not None:
                self._memo[key] = cached
                if trace is not None:
                    trace.span("cache", parent=root.span_id).set(
                        cycles=cached.simulated_cycles, detail=key
                    ).close()
                return cached, "cache"

        # Miss everywhere: this submission starts the simulation.  No
        # await between the table checks above and the insertion below,
        # so concurrent submissions on the loop can never double-start.
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._jobs[key] = future
        if trace is not None:
            self._trace_ids[key] = trace.trace_id
        try:
            if monitors is not None:
                if trace is not None:
                    with trace.span("execute", parent=root.span_id) as span:
                        result = await self._execute_monitored(spec, monitors)
                        span.set(
                            cycles=result.simulated_cycles, detail=key
                        )
                else:
                    result = await self._execute_monitored(spec, monitors)
                source = "live"
            else:
                self.runs_executed += 1
                if trace is not None:
                    span = trace.span("execute", parent=root.span_id)
                    try:
                        result = await asyncio.wrap_future(
                            self.backend.submit(
                                spec, trace=trace, parent=span.span_id
                            )
                        )
                    except BaseException:
                        span.set(detail="error").close()
                        raise
                    span.set(cycles=result.simulated_cycles, detail=key)
                    span.close()
                else:
                    result = await asyncio.wrap_future(
                        self.backend.submit(spec)
                    )
                source = "executed"
            self._memo[key] = result
            if self.cache is not None and monitors is None:
                self.cache.put(spec.content_hash(), spec, result)
            future.set_result(result)
            return result, source
        except BaseException as exc:
            future.set_exception(exc)
            # Dedup waiters re-raise from the future; retrieving here
            # silences the "exception never retrieved" warning when the
            # starting submission was the only one.
            future.exception()
            raise
        finally:
            self._jobs.pop(key, None)

    async def _execute_monitored(
        self, spec: RunSpec, monitors: str
    ) -> RunResult:
        """Run one monitored job live on an executor thread."""
        from repro.obs.monitors import run_spec_with_monitors

        self.monitored_runs += 1
        loop = asyncio.get_running_loop()
        run = functools.partial(
            run_spec_with_monitors, spec, strict=monitors == "strict"
        )
        result, _suite = await loop.run_in_executor(None, run)
        return result

    async def _run_live(
        self,
        key: str,
        spec: RunSpec,
        monitors: Optional[str],
        event_cb: Callable[[dict], None],
        trace: Optional[JobTrace] = None,
        root=None,
    ) -> tuple[RunResult, str]:
        """A fresh in-process run streaming its events to ``event_cb``."""
        if monitors is None:
            self.runs_executed += 1
            self.live_runs += 1
        else:
            self.monitored_runs += 1
        loop = asyncio.get_running_loop()

        def send(frame: dict) -> None:
            loop.call_soon_threadsafe(event_cb, frame)

        telemetry = Telemetry()
        telemetry.subscribe(WireSink(send, job=spec.content_hash()))

        # Register so concurrent plain submissions of the same spec
        # dedup against this live run instead of re-simulating.  If a
        # job is already in flight under this key, the live run simply
        # proceeds standalone (the stream still needs its own run).
        future: Optional[asyncio.Future] = None
        if key not in self._jobs:
            future = loop.create_future()
            self._jobs[key] = future
            if trace is not None:
                self._trace_ids[key] = trace.trace_id
        span = (
            trace.span("live", parent=root.span_id)
            if trace is not None
            else None
        )
        try:
            if monitors is not None:
                from repro.obs.monitors import run_spec_with_monitors

                run = functools.partial(
                    run_spec_with_monitors,
                    spec,
                    strict=monitors == "strict",
                    telemetry=telemetry,
                )
                result, _suite = await loop.run_in_executor(None, run)
            else:
                run = functools.partial(
                    execute_run_spec,
                    spec,
                    telemetry=telemetry,
                    checkpoint_store=self.checkpoint_store,
                )
                result = await loop.run_in_executor(None, run)
            if span is not None:
                span.set(cycles=result.simulated_cycles, detail=key)
                span.close()
            self._memo[key] = result
            if self.cache is not None and monitors is None:
                self.cache.put(spec.content_hash(), spec, result)
            if future is not None:
                future.set_result(result)
            return result, "live"
        except BaseException as exc:
            if span is not None:
                span.set(detail="error").close()
            if future is not None:
                future.set_exception(exc)
                future.exception()
            raise
        finally:
            if future is not None and self._jobs.get(key) is future:
                self._jobs.pop(key, None)

    def close(self) -> None:
        self.backend.close()
        if self.span_sink is not None:
            self.span_sink.close()
        if self.log is not None:
            self.log.close()


class ServiceServer:
    """Asyncio socket front-end for one :class:`SweepService`.

    One JSON frame per line in both directions (see
    :mod:`repro.telemetry.wire` and ``docs/SERVICE.md``).  Request
    frames carry ``op`` + client-chosen ``id``; every response frame
    echoes the ``id``, so one connection can pipeline requests.
    Responses are encoded in the wire-schema version the request
    carried, so v1 clients interoperate with a v2 server.
    """

    def __init__(
        self,
        service: SweepService,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
    ):
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket; ``self.port`` is the bound port."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.service.log is not None:
            self.service.log.info(
                "listening", host=self.host, port=self.port
            )

    async def serve_until_shutdown(self) -> None:
        """Serve until a ``shutdown`` op (or :meth:`stop`) arrives."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._shutdown.wait()
        self.service.close()

    def stop(self) -> None:
        self._shutdown.set()

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        send_lock = asyncio.Lock()

        async def send(frame: dict, version: int = WIRE_SCHEMA) -> None:
            async with send_lock:
                writer.write(encode_frame(frame, version=version))
                await writer.drain()

        pending: set[asyncio.Task] = set()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    frame = decode_frame(line)
                except ReproError as exc:
                    await send(
                        {"type": "error", "id": None, "error": str(exc)}
                    )
                    continue
                version = frame.get("v", WIRE_SCHEMA)

                async def reply(out: dict, _v: int = version) -> None:
                    await send(out, version=_v)

                task = asyncio.create_task(self._dispatch(frame, reply))
                pending.add(task)
                task.add_done_callback(pending.discard)
                if frame.get("op") == "shutdown":
                    break
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # Loop teardown on shutdown cancels the close handshake;
                # the socket is going away either way.
                pass

    async def _dispatch(self, frame: dict, send) -> None:
        rid = frame.get("id")
        op = frame.get("op")
        try:
            if op == "ping":
                await send(self._hello_frame(rid))
            elif op == "status":
                await send(
                    {
                        "type": "status",
                        "id": rid,
                        "counters": self.service.counters(),
                    }
                )
            elif op == "metrics":
                await send(self._metrics_frame(rid))
            elif op == "shutdown":
                await send({"type": "ack", "id": rid, "op": "shutdown"})
                self.stop()
            elif op in ("submit", "sweep"):
                await self._op_submit(frame, rid, send)
            else:
                await send(
                    {
                        "type": "error",
                        "id": rid,
                        "error": f"unknown op {op!r}",
                    }
                )
        except ConnectionError:  # pragma: no cover - client went away
            pass

    def _hello_frame(self, rid) -> dict:
        from repro import __version__
        from repro.core.results import RESULT_SCHEMA
        from repro.core.runspec import SPEC_SCHEMA

        return {
            "type": "pong",
            "id": rid,
            "wire": WIRE_SCHEMA,
            "wire_supported": list(SUPPORTED_WIRE_SCHEMAS),
            "spec_schema": SPEC_SCHEMA,
            "result_schema": RESULT_SCHEMA,
            "version": __version__,
            "backend": self.service.backend.name,
        }

    def _metrics_frame(self, rid) -> dict:
        """The ``metrics`` op body: structured snapshots + Prometheus
        text.  ``deterministic`` is gate-safe; ``wall`` and the span
        wall fields are artifacts."""
        service = self.service
        counters = service.counters()
        info = {
            "backend": service.backend.name,
            "caching": str(service.cache is not None).lower(),
        }
        return {
            "type": "metrics",
            "id": rid,
            "counters": counters,
            "deterministic": service.metrics.deterministic_snapshot(),
            "wall": service.metrics.wall_snapshot(),
            "recent_spans": [e.to_dict() for e in service.recent_spans],
            "text": service.metrics.render_prometheus(
                counters=counters, info=info
            ),
        }

    # -- submit / sweep --------------------------------------------------------

    @staticmethod
    def _specs_from_frame(frame: dict) -> list[RunSpec]:
        """Job decomposition of a request frame.

        ``submit`` carries one ``spec`` payload; ``sweep`` carries
        either an explicit ``specs`` list or a ``workloads`` x
        ``scenarios`` matrix with shared ``options`` (forwarded to
        :func:`repro.core.simulator.sweep_specs`).
        """
        if "spec" in frame:
            return [RunSpec.from_dict(frame["spec"])]
        if "specs" in frame:
            payloads = frame["specs"]
            if not isinstance(payloads, list) or not payloads:
                raise ServiceError("'specs' must be a non-empty list")
            return [RunSpec.from_dict(p) for p in payloads]
        if "workloads" in frame or "scenarios" in frame:
            options = frame.get("options", {})
            if not isinstance(options, dict):
                raise ServiceError("'options' must be an object")
            return sweep_specs(
                frame.get("workloads", []),
                frame.get("scenarios", []),
                **options,
            )
        raise ServiceError(
            "request needs 'spec', 'specs', or 'workloads'/'scenarios'"
        )

    async def _op_submit(self, frame: dict, rid, send) -> None:
        try:
            specs = self._specs_from_frame(frame)
        except (ConfigError, ServiceError, ReproError) as exc:
            await send({"type": "error", "id": rid, "error": str(exc)})
            return
        monitors = frame.get("monitors")
        stream = bool(frame.get("stream"))
        trace_id = frame.get("trace")
        if trace_id is not None and not isinstance(trace_id, str):
            await send(
                {"type": "error", "id": rid, "error": "'trace' must be a string"}
            )
            return

        # Streamed events and closed spans are enqueued (thread-safely,
        # via the loop) and drained by one writer coroutine so these
        # frames interleave cleanly with other responses.
        queue: Optional[asyncio.Queue] = (
            asyncio.Queue() if stream or trace_id is not None else None
        )
        loop = asyncio.get_running_loop()

        def event_cb(event_frame: dict) -> None:
            event_frame["id"] = rid
            queue.put_nowait(event_frame)

        def make_trace(job: str) -> Optional[JobTrace]:
            if trace_id is None:
                return None

            def emit(event: SpanEvent) -> None:
                def deliver() -> None:
                    self.service.record_span(event)
                    out = span_frame(event, job=job)
                    out["id"] = rid
                    queue.put_nowait(out)

                # Spans may close on worker threads; marshal onto the
                # loop so queueing and record order stay consistent.
                loop.call_soon_threadsafe(deliver)

            return JobTrace(trace_id, job, emit)

        async def drain() -> None:
            while True:
                item = await queue.get()
                if item is None:
                    return
                await send(item)

        drainer = asyncio.create_task(drain()) if queue is not None else None
        jobs = [spec.content_hash() for spec in specs]
        await send({"type": "ack", "id": rid, "jobs": jobs})
        if self.service.log is not None:
            self.service.log.info(
                "submit",
                trace=trace_id,
                op=frame.get("op"),
                jobs=len(jobs),
                stream=stream,
                monitors=monitors,
            )
        sources: dict[str, str] = {}

        async def one(spec: RunSpec) -> None:
            job = spec.content_hash()
            try:
                result, source = await self.service.resolve(
                    spec,
                    monitors=monitors,
                    event_cb=event_cb if stream else None,
                    trace=make_trace(job),
                )
            except MonitorError as exc:
                sources[job] = "monitor_error"
                await send(
                    {
                        "type": "error",
                        "id": rid,
                        "job": job,
                        "code": "monitor",
                        "error": str(exc),
                    }
                )
                return
            except (ReproError, ServiceError) as exc:
                sources[job] = "error"
                await send(
                    {
                        "type": "error",
                        "id": rid,
                        "job": job,
                        "error": str(exc),
                    }
                )
                return
            sources[job] = source
            payload = {
                "type": "result",
                "id": rid,
                "job": job,
                "source": source,
                "spec": spec.to_dict(),
                "result": result.to_dict(),
            }
            await send(payload)

        try:
            await asyncio.gather(*(one(spec) for spec in specs))
        finally:
            if drainer is not None:
                queue.put_nowait(None)
                await drainer
        done = {
            "type": "done",
            "id": rid,
            "jobs": jobs,
            "sources": sources,
            "counters": self.service.counters(),
        }
        if trace_id is not None:
            done["trace"] = trace_id
        await send(done)


async def _serve(service, host, port, ready=None) -> ServiceServer:
    server = ServiceServer(service, host, port)
    await server.start()
    if ready is not None:
        ready(server)
    await server.serve_until_shutdown()
    return server


def serve_forever(
    service: SweepService,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    on_ready=None,
) -> None:
    """Blocking entry point for the ``serve`` CLI."""
    asyncio.run(_serve(service, host, port, ready=on_ready))


def serve_in_thread(
    service: SweepService,
    host: str = "127.0.0.1",
    port: int = 0,
) -> tuple[ServiceServer, threading.Thread]:
    """Start a server on a daemon thread; returns once it is listening.

    For tests and embedding: ``server.port`` is the bound port, stop
    with ``server.stop()`` (thread-safe via the captured loop) and join
    the returned thread.
    """
    started = threading.Event()
    box: dict = {}

    def ready(server: ServiceServer) -> None:
        box["server"] = server
        box["loop"] = asyncio.get_running_loop()
        started.set()

    def runner() -> None:
        try:
            serve_forever(service, host, port, on_ready=ready)
        except Exception as exc:  # pragma: no cover - startup failures
            box["error"] = exc
            started.set()

    thread = threading.Thread(
        target=runner, name="repro-service", daemon=True
    )
    thread.start()
    started.wait()
    if "error" in box:
        raise box["error"]
    server = box["server"]
    loop = box["loop"]
    original_stop = server.stop

    def stop() -> None:
        loop.call_soon_threadsafe(original_stop)

    server.stop = stop  # type: ignore[method-assign]
    return server, thread
