"""Command-line simulation runner.

Usage::

    python -m repro WL-6 codesign
    python -m repro WL-1 all_bank --density 24 --trefw-ms 32 --windows 2
    python -m repro WL-8 codesign --json result.json

(For regenerating the paper's figures, use ``python -m repro.experiments``.)
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys

from repro import available_scenarios, available_workloads, run_simulation
from repro.units import ms


def result_to_dict(result) -> dict:
    """JSON-serializable view of a RunResult."""
    data = dataclasses.asdict(result)
    data["hmean_ipc"] = result.hmean_ipc
    data["avg_read_latency_mem_cycles"] = result.avg_read_latency_mem_cycles
    data["refresh_stall_fraction"] = result.refresh_stall_fraction
    energy = data.pop("energy", None)
    if energy is not None:
        data["energy"] = {
            **energy,
            "total_mj": result.energy.total_mj,
            "refresh_fraction": result.energy.refresh_fraction,
        }
    return data


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Simulate one workload mix under one refresh scenario.",
    )
    parser.add_argument("workload", help="Table 2 mix name (WL-1 .. WL-10)")
    parser.add_argument(
        "scenario",
        choices=available_scenarios(),
        help="refresh/OS scenario",
    )
    parser.add_argument("--density", type=int, default=32,
                        help="chip density in Gbit (default 32)")
    parser.add_argument("--trefw-ms", type=float, default=64.0,
                        help="retention window in ms (default 64)")
    parser.add_argument("--windows", type=float, default=2.0,
                        help="measured retention windows (default 2)")
    parser.add_argument("--warmup", type=float, default=0.25,
                        help="warm-up windows (default 0.25)")
    parser.add_argument("--refresh-scale", type=int, default=256,
                        help="simulation scaling factor (default 256)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--banks-per-task", type=int, default=None,
                        help="partition width override (co-design scenarios)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the full result as JSON")
    args = parser.parse_args(argv)

    if args.workload not in available_workloads():
        parser.error(
            f"unknown workload {args.workload!r}; known: {available_workloads()}"
        )

    result = run_simulation(
        args.workload,
        args.scenario,
        num_windows=args.windows,
        warmup_windows=args.warmup,
        banks_per_task=args.banks_per_task,
        density_gbit=args.density,
        trefw_ps=ms(args.trefw_ms),
        refresh_scale=args.refresh_scale,
        seed=args.seed,
    )
    print(result.summary())
    if result.energy is not None:
        print(f"  energy             : {result.energy}")
    if args.json:
        with open(args.json, "w") as f:
            json.dump(result_to_dict(result), f, indent=2)
        print(f"  wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
