"""Command-line entry point: ``run``, ``sweep``, ``serve``, ``submit``.

Usage::

    python -m repro run WL-6 codesign
    python -m repro run WL-1 all_bank --density 24 --trefw-ms 32
    python -m repro run WL-6 all_bank,per_bank,codesign --jobs 4  # compare
    python -m repro run WL-6 codesign --trace trace.json          # Perfetto
    python -m repro run WL-6 codesign --monitors         # invariant checks
    python -m repro run WL-6 codesign --checkpoint-every 1
    python -m repro run --resume ckpt-400000.json        # continue a shard

    python -m repro sweep --workloads WL-6,WL-8 --scenarios all_bank,codesign \
        --out results/           # hash-keyed spec+result entries

    python -m repro serve --backend thread --port 7341   # sweep service
    python -m repro serve --metrics-port 9100 --log-jsonl service.log \
        --span-jsonl spans.jsonl                         # ... observed
    python -m repro submit WL-6 codesign                 # ... and use it
    python -m repro submit --workloads WL-6 --scenarios all_bank,codesign \
        --stream events.jsonl --out results/
    python -m repro submit WL-6 codesign --trace-spans spans-trace.json
    python -m repro submit --ping
    python -m repro submit --metrics                     # scrape in-band

(For regenerating the paper's figures, use ``python -m repro.experiments``.)

All subcommands resolve through the same serializable RunSpec pipeline:
results persist in the content-addressed disk cache (``--cache-dir``,
``REPRO_CACHE_DIR`` or ``~/.cache/repro``; disable with ``--no-cache``).
``run`` with a comma-separated scenario list fans out over ``--jobs``
worker processes.  ``--trace``/``--trace-jsonl`` and ``--metrics-out`` —
and the ``repro.obs`` consumers ``--monitors`` and ``--profile`` — need
the events of a *live* run, so they bypass the result cache; with
several scenarios each output file gets a ``.<scenario>`` suffix before
its extension.

``sweep`` ``--out DIR`` and ``submit`` ``--out DIR`` write one
``<spec-hash>.json`` entry per cell — the directory format
``python -m repro.obs diff DIR_A DIR_B`` compares.

The original flag-only invocation (``python -m repro WL-6 codesign``)
keeps working as a deprecated alias for the ``run`` subcommand.

Exit codes with ``--monitors``: 0 clean, 1 violations collected,
2 strict-mode fail-fast.
"""

from __future__ import annotations

import json
import sys
import warnings
from pathlib import Path

import argparse

from repro import available_scenarios, available_workloads
from repro.core.simulator import build_system_from_spec, make_run_spec, sweep_specs
from repro.telemetry import ChromeTraceSink, JsonlSink, Telemetry
from repro.units import ms

#: First-positional names that select a subcommand; anything else is the
#: deprecated flag-only alias for ``run``.
SUBCOMMANDS = ("run", "sweep", "serve", "submit")


def result_to_dict(result) -> dict:
    """JSON-serializable view of a RunResult, with derived metrics."""
    data = result.to_dict()
    data["hmean_ipc"] = result.hmean_ipc
    data["avg_read_latency_mem_cycles"] = result.avg_read_latency_mem_cycles
    data["refresh_stall_fraction"] = result.refresh_stall_fraction
    if result.energy is not None:
        data["energy"] = {
            **result.energy.to_dict(),
            "total_mj": result.energy.total_mj,
            "refresh_fraction": result.energy.refresh_fraction,
        }
    return data


def _suffixed(path: str, name: str, multi: bool) -> str:
    """``trace.json`` -> ``trace.codesign.json`` when several scenarios
    share one output flag."""
    if not multi:
        return path
    p = Path(path)
    return str(p.with_name(f"{p.stem}.{name}{p.suffix}"))


def _checkpoint_sink(spec, name: str, args, multi: bool):
    """A ``system.run`` checkpoint sink writing files under
    ``--checkpoint-dir``, halting after ``--checkpoint-halt`` writes."""
    from repro.core.checkpoint import save_checkpoint

    directory = Path(args.checkpoint_dir)
    written: list[Path] = []

    def sink(cycle: int, state: dict) -> bool:
        path = directory / _suffixed(
            f"ckpt-{cycle}.json", name, multi
        )
        save_checkpoint(path, spec, cycle, state)
        written.append(path)
        print(f"  wrote checkpoint {path}")
        return args.checkpoint_halt is not None and (
            len(written) >= args.checkpoint_halt
        )

    return sink


def _run_observed(spec, name: str, args, multi: bool, resume=None):
    """Execute one spec live with the requested sinks/monitors attached.

    ``resume = (cycle, state)`` continues from a checkpoint; sinks and
    monitors then attach *after* system construction so the resumed
    event stream carries no duplicate construction-time events and
    concatenates cleanly with the pre-checkpoint shard's stream.
    Returns ``None`` when a ``--checkpoint-halt`` barrier stopped the
    run before completion.
    """
    telemetry = Telemetry()
    chrome = jsonl = suite = profiler = None

    def attach_sinks():
        nonlocal chrome, jsonl, suite
        if args.trace:
            chrome = telemetry.subscribe(ChromeTraceSink())
        if args.trace_jsonl:
            jsonl = telemetry.subscribe(
                JsonlSink(_suffixed(args.trace_jsonl, name, multi))
            )
        if args.monitors:
            from repro.obs.monitors import MonitorSuite

            suite = MonitorSuite(
                strict=args.monitors == "strict"
            ).attach(telemetry)

    if resume is None:
        # Attach before system construction: page allocations are
        # emitted while the System is being built, and the suite
        # buffers them until bind().
        attach_sinks()
    try:
        system = build_system_from_spec(spec, telemetry=telemetry)
        if resume is not None:
            attach_sinks()
        if suite is not None:
            suite.bind(
                system, resume_time=resume[0] if resume is not None else None
            )
        if args.profile:
            from repro.obs.profiler import EngineProfiler

            profiler = EngineProfiler()
            system.engine.set_profiler(profiler)
        sink = None
        if args.checkpoint_every is not None:
            sink = _checkpoint_sink(spec, name, args, multi)
        result = system.run(
            num_windows=spec.num_windows,
            warmup_windows=spec.warmup_windows,
            sample_windows=spec.sample_windows,
            checkpoint_every=args.checkpoint_every,
            checkpoint_sink=sink,
            resume_state=resume[1] if resume is not None else None,
        )
    finally:
        # Mid-run exceptions (including strict-mode MonitorError) must
        # still flush file sinks: complete JSONL lines beat a lost file.
        telemetry.close()
    if result is None:
        print(f"  halted at checkpoint (cycle {system.engine.now})")
        if chrome is not None:
            out = _suffixed(args.trace, name, multi)
            chrome.write(out)
            print(f"  wrote trace {out}")
        if jsonl is not None:
            print(f"  wrote events {jsonl.path} ({jsonl.written} lines)")
        return None
    if suite is not None:
        suite.finish(system.engine.now)
        result.monitor_violations = suite.violations()
        counts = ", ".join(
            f"{monitor}: {entry['violations']}"
            for monitor, entry in suite.summary().items()
            if entry["active"]
        )
        print(f"  monitors           : {counts}")
        for violation in result.monitor_violations:
            print(f"    VIOLATION {violation}")
    if profiler is not None:
        out = _suffixed(args.profile, name, multi)
        report = profiler.report()
        # Deterministic dispatch-work counters ride along with the wall
        # profile (docs/PERFORMANCE.md has the field reference).
        report["dispatch_cost_model"] = system.controller.dispatch_cost_model()
        with open(out, "w") as f:
            json.dump(report, f, indent=2)
        print(f"  wrote profile {out}")
        print("  " + profiler.format_table().replace("\n", "\n  "))
    if chrome is not None:
        out = _suffixed(args.trace, name, multi)
        chrome.write(out)
        print(f"  wrote trace {out} ({len(chrome.trace()['traceEvents'])} events)")
    if jsonl is not None:
        print(f"  wrote events {jsonl.path} ({jsonl.written} lines)")
    if args.metrics_out:
        out = _suffixed(args.metrics_out, name, multi)
        system.metrics().write(out)
        print(f"  wrote metrics {out}")
    return result


# -- argument plumbing ---------------------------------------------------------


def _common_parent() -> argparse.ArgumentParser:
    """Execution flags shared by every subcommand that runs or serves."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker parallelism "
                             "(default: REPRO_JOBS or the CPU count)")
    parent.add_argument("--cache-dir", default=None, metavar="PATH",
                        help="persistent result-cache directory "
                             "(default: REPRO_CACHE_DIR or ~/.cache/repro)")
    parent.add_argument("--no-cache", action="store_true",
                        help="disable the persistent result cache")
    return parent


def _spec_parent() -> argparse.ArgumentParser:
    """RunSpec-shaping flags shared by run/sweep/submit."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--density", type=int, default=32,
                        help="chip density in Gbit (default 32)")
    parent.add_argument("--trefw-ms", type=float, default=64.0,
                        help="retention window in ms (default 64)")
    parent.add_argument("--windows", type=float, default=2.0,
                        help="measured retention windows (default 2)")
    parent.add_argument("--warmup", type=float, default=0.25,
                        help="warm-up windows (default 0.25)")
    parent.add_argument("--refresh-scale", type=int, default=256,
                        help="simulation scaling factor (default 256)")
    parent.add_argument("--seed", type=int, default=1)
    parent.add_argument("--banks-per-task", type=int, default=None,
                        help="partition width override (co-design scenarios)")
    parent.add_argument("--timeseries", type=int, default=None, metavar="N",
                        help="attach a timeseries with N samples per "
                             "retention window to the result")
    return parent


def _observe_parent() -> argparse.ArgumentParser:
    """Live-run observation flags (run subcommand only)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--trace", metavar="PATH", default=None,
                        help="write a Chrome trace-event JSON of the run "
                             "(load in Perfetto; bypasses the result cache)")
    parent.add_argument("--trace-jsonl", metavar="PATH", default=None,
                        help="write the raw event stream as JSON lines "
                             "(bypasses the result cache)")
    parent.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="write the flattened metrics snapshot as JSON "
                             "(bypasses the result cache)")
    parent.add_argument("--monitors", nargs="?", const="collect",
                        choices=["collect", "strict"], default=None,
                        help="run invariant monitors over the event stream "
                             "(collect: report violations and exit 1 if any; "
                             "strict: fail fast with exit 2; "
                             "bypasses the result cache)")
    parent.add_argument("--profile", metavar="PATH", default=None,
                        help="profile engine dispatch per subsystem and write "
                             "the report as JSON (bypasses the result cache)")
    parent.add_argument("--checkpoint-every", type=float, default=None,
                        metavar="N",
                        help="write a checkpoint at every N retention-window "
                             "barrier (always a live run)")
    parent.add_argument("--checkpoint-dir", default=".", metavar="PATH",
                        help="directory for --checkpoint-every files "
                             "(default: current directory)")
    parent.add_argument("--checkpoint-halt", type=int, default=None,
                        metavar="K",
                        help="stop the run after writing K checkpoints "
                             "(time-sharded runs; exit 0, no result output)")
    return parent


def build_parser() -> argparse.ArgumentParser:
    common, spec, observe = _common_parent(), _spec_parent(), _observe_parent()
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="DRAM refresh co-design simulator: run one spec, sweep "
                    "a matrix, serve a sweep service, or submit to one.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser(
        "run",
        parents=[common, spec, observe],
        help="simulate one workload under one or more scenarios",
        description="Simulate one workload mix under one or more refresh "
                    "scenarios (comma-separated).",
    )
    run_p.add_argument("workload", nargs="?", default=None,
                       help="Table 2 mix name (WL-1 .. WL-10); omitted when "
                            "resuming from a checkpoint")
    run_p.add_argument(
        "scenario",
        nargs="?",
        default=None,
        help="refresh/OS scenario, or a comma-separated list of them "
             f"(known: {', '.join(available_scenarios())}); omitted when "
             "resuming from a checkpoint",
    )
    run_p.add_argument("--json", metavar="PATH", default=None,
                       help="also write the full result(s) as JSON")
    run_p.add_argument("--resume", metavar="CKPT", default=None,
                       help="resume a run from a checkpoint file; the "
                            "workload/scenario positionals must be omitted "
                            "(they are recorded in the checkpoint)")
    run_p.set_defaults(func=_cmd_run, parser=run_p)

    sweep_p = sub.add_parser(
        "sweep",
        parents=[common, spec],
        help="run a workload x scenario matrix locally",
        description="Run every cell of a workload x scenario matrix through "
                    "the cache + process-pool sweep runner; --out writes one "
                    "<spec-hash>.json entry per cell (the directory format "
                    "`python -m repro.obs diff` compares).",
    )
    sweep_p.add_argument("--workloads", required=True, metavar="A,B,...",
                         help="comma-separated Table 2 mix names")
    sweep_p.add_argument("--scenarios", required=True, metavar="A,B,...",
                         help="comma-separated scenario names "
                              f"(known: {', '.join(available_scenarios())})")
    sweep_p.add_argument("--warmup-scenario", default=None, metavar="NAME",
                         help="warm-start every cell from this scenario's "
                              "warm-up prefix (checkpointed once per prefix)")
    sweep_p.add_argument("--out", default=None, metavar="DIR",
                         help="write one <spec-hash>.json spec+result entry "
                              "per cell into DIR")
    sweep_p.add_argument("--json", metavar="PATH", default=None,
                         help="also write all results as one JSON list")
    sweep_p.set_defaults(func=_cmd_sweep, parser=sweep_p)

    serve_p = sub.add_parser(
        "serve",
        parents=[common],
        help="serve the sweep service over TCP",
        description="Start the sweep service: clients submit specs/sweeps "
                    "over a line-oriented JSON protocol; identical concurrent "
                    "submissions collapse onto one simulation "
                    "(see docs/SERVICE.md).",
    )
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    serve_p.add_argument("--port", type=int, default=None,
                         help="TCP port (default 7341; 0 picks a free port)")
    serve_p.add_argument("--backend", default="thread",
                         choices=["inline", "thread", "process"],
                         help="where simulations execute (default: thread)")
    serve_p.add_argument("--metrics-port", type=int, default=None,
                         metavar="PORT",
                         help="also serve the Prometheus text exposition "
                              "over HTTP on this port (GET /metrics; "
                              "0 picks a free port)")
    serve_p.add_argument("--log-jsonl", metavar="PATH", default=None,
                         help="append structured JSONL service logs "
                              "(one record per line, with trace context)")
    serve_p.add_argument("--span-jsonl", metavar="PATH", default=None,
                         help="write every closed tracing span as JSON "
                              "lines (reload with repro.telemetry.read_jsonl)")
    serve_p.set_defaults(func=_cmd_serve, parser=serve_p)

    submit_p = sub.add_parser(
        "submit",
        parents=[spec],
        help="submit work to a running sweep service",
        description="Submit one spec or a sweep matrix to a running "
                    "`python -m repro serve` instance and print the results.",
    )
    submit_p.add_argument("workload", nargs="?", default=None,
                          help="Table 2 mix name (or use --workloads)")
    submit_p.add_argument("scenario", nargs="?", default=None,
                          help="scenario name or comma-separated list "
                               "(or use --scenarios)")
    submit_p.add_argument("--workloads", default=None, metavar="A,B,...",
                          help="comma-separated mix names (sweep matrix)")
    submit_p.add_argument("--scenarios", default=None, metavar="A,B,...",
                          help="comma-separated scenario names (sweep matrix)")
    submit_p.add_argument("--warmup-scenario", default=None, metavar="NAME",
                          help="warm-start every cell from this scenario's "
                               "warm-up prefix")
    submit_p.add_argument("--host", default="127.0.0.1",
                          help="service address (default 127.0.0.1)")
    submit_p.add_argument("--port", type=int, default=None,
                          help="service port (default 7341)")
    submit_p.add_argument("--connect-retries", type=int, default=0, metavar="N",
                          help="retry the initial connection N times with "
                               "bounded exponential backoff (0.2s doubling "
                               "to 2s) before giving up")
    submit_p.add_argument("--stream", metavar="PATH", default=None,
                          help="stream live telemetry and write it as "
                               "canonical JSON lines to PATH")
    submit_p.add_argument("--trace-spans", metavar="PATH", default=None,
                          help="trace the submission end-to-end and write "
                               "the per-tier span lanes as Chrome "
                               "trace-event JSON (load in Perfetto)")
    submit_p.add_argument("--monitors", nargs="?", const="collect",
                          choices=["collect", "strict"], default=None,
                          help="run invariant monitors server-side "
                               "(collect: exit 1 on violations; "
                               "strict: exit 2)")
    submit_p.add_argument("--out", default=None, metavar="DIR",
                          help="write one <spec-hash>.json spec+result entry "
                               "per job into DIR")
    submit_p.add_argument("--json", metavar="PATH", default=None,
                          help="also write the result(s) as JSON")
    submit_p.add_argument("--ping", action="store_true",
                          help="print the server hello (schema versions, "
                               "backend) and exit")
    submit_p.add_argument("--status", action="store_true",
                          help="print the server counter snapshot and exit")
    submit_p.add_argument("--metrics", action="store_true",
                          help="print the server metrics frame (counters, "
                               "deterministic/wall histograms, recent spans, "
                               "Prometheus text) as JSON and exit")
    submit_p.add_argument("--shutdown", action="store_true",
                          help="ask the server to stop serving and exit")
    submit_p.set_defaults(func=_cmd_submit, parser=submit_p)

    return parser


def _split_names(parser, value: str, kind: str, known) -> list[str]:
    names = [item.strip() for item in value.split(",") if item.strip()]
    if not names:
        parser.error(f"no {kind} given")
    for name in names:
        if name not in known:
            parser.error(f"unknown {kind} {name!r}; known: {list(known)}")
    return names


def _matrix_specs(args, parser, workloads: list[str], scenarios: list[str]):
    """workload x scenario RunSpecs from the shared spec flags."""
    from repro.errors import ConfigError

    try:
        return sweep_specs(
            workloads,
            scenarios,
            num_windows=args.windows,
            warmup_windows=args.warmup,
            banks_per_task=args.banks_per_task,
            sample_windows=args.timeseries,
            warmup_scenario=args.warmup_scenario,
            density_gbit=args.density,
            trefw_ps=ms(args.trefw_ms),
            refresh_scale=args.refresh_scale,
            seed=args.seed,
        )
    except ConfigError as exc:
        parser.error(str(exc))


# -- subcommands ---------------------------------------------------------------


def _cmd_run(args) -> int:
    parser = args.parser
    resume = None
    if args.resume is not None:
        if args.workload is not None or args.scenario is not None:
            parser.error(
                "--resume reads workload/scenario from the checkpoint; "
                "omit the positional arguments"
            )
        from repro.core.checkpoint import load_checkpoint

        from repro.errors import ConfigError

        try:
            ckpt_spec, cycle, state = load_checkpoint(args.resume)
        except ConfigError as exc:
            print(str(exc), file=sys.stderr)
            return 1
        provenance = f"{ckpt_spec.content_hash()}@{cycle}"
        specs = [ckpt_spec.with_(resume_from=provenance)]
        scenarios = [ckpt_spec.scenario.name]
        resume = (cycle, state)
        print(f"resuming {args.resume} (cycle {cycle}, {provenance})")
    else:
        if args.workload is None or args.scenario is None:
            parser.error("workload and scenario are required (or use --resume)")
        if args.workload not in available_workloads():
            parser.error(
                f"unknown workload {args.workload!r}; "
                f"known: {available_workloads()}"
            )
        scenarios = _split_names(
            parser, args.scenario, "scenario", available_scenarios()
        )

        specs = [
            make_run_spec(
                args.workload,
                name,
                num_windows=args.windows,
                warmup_windows=args.warmup,
                banks_per_task=args.banks_per_task,
                sample_windows=args.timeseries,
                density_gbit=args.density,
                trefw_ps=ms(args.trefw_ms),
                refresh_scale=args.refresh_scale,
                seed=args.seed,
            )
            for name in scenarios
        ]

    observed = (
        args.trace or args.trace_jsonl or args.metrics_out
        or args.monitors or args.profile
        or args.checkpoint_every is not None or resume is not None
    )
    results = []
    if observed:
        # Event sinks, monitors, profiles and checkpointing need a live
        # run: execute each spec in-process instead of through the cache.
        from repro.errors import MonitorError

        for spec, name in zip(specs, scenarios):
            try:
                result = _run_observed(
                    spec, name, args, multi=len(specs) > 1, resume=resume
                )
            except MonitorError as exc:
                print(f"monitor violation ({name}): {exc}", file=sys.stderr)
                return 2
            if result is not None:
                results.append(result)
    else:
        # Resolve through the sweep runner: disk cache + parallel fan-out.
        from repro.experiments.runner import SweepRunner

        runner = SweepRunner(
            jobs=args.jobs, cache_dir=args.cache_dir, use_cache=not args.no_cache
        )
        if len(specs) > 1:
            runner.prefetch(specs)
        results = [runner.run_spec(spec) for spec in specs]

    for result in results:
        print(result.summary())
        if result.energy is not None:
            print(f"  energy             : {result.energy}")
    if args.json and results:
        payload = (
            result_to_dict(results[0])
            if len(results) == 1
            else [result_to_dict(r) for r in results]
        )
        with open(args.json, "w") as f:
            json.dump(payload, f, indent=2)
        print(f"  wrote {args.json}")
    if args.monitors and any(r.monitor_violations for r in results):
        return 1
    return 0


def _cmd_sweep(args) -> int:
    parser = args.parser
    workloads = _split_names(
        parser, args.workloads, "workload", available_workloads()
    )
    scenarios = _split_names(
        parser, args.scenarios, "scenario", available_scenarios()
    )
    specs = _matrix_specs(args, parser, workloads, scenarios)

    from repro.experiments.runner import SweepRunner

    runner = SweepRunner(
        jobs=args.jobs, cache_dir=args.cache_dir, use_cache=not args.no_cache
    )
    runner.prefetch(specs)
    results = [runner.run_spec(spec) for spec in specs]
    for result in results:
        print(result.summary())
    if args.out:
        from repro.experiments.cache import write_result_entry

        for spec, result in zip(specs, results):
            write_result_entry(args.out, spec, result)
        print(f"  wrote {len(specs)} entries to {args.out}")
    if args.json:
        with open(args.json, "w") as f:
            json.dump([result_to_dict(r) for r in results], f, indent=2)
        print(f"  wrote {args.json}")
    return 0


def _cmd_serve(args) -> int:
    from repro.service import SweepService, make_backend
    from repro.service.server import DEFAULT_PORT, serve_forever
    from repro.tracing import StructuredLog

    backend = make_backend(args.backend, jobs=args.jobs)
    log = StructuredLog(path=args.log_jsonl) if args.log_jsonl else None
    span_sink = JsonlSink(args.span_jsonl) if args.span_jsonl else None
    service = SweepService(
        backend=backend,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        log=log,
        span_sink=span_sink,
    )
    metrics_server = None
    if args.metrics_port is not None:
        from repro.service.metrics import start_metrics_http

        metrics_server = start_metrics_http(
            service.metrics,
            service.counters,
            info={
                "backend": backend.name,
                "caching": str(service.cache is not None).lower(),
            },
            host=args.host,
            port=args.metrics_port,
        )

    def ready(server) -> None:
        exposition = (
            f", metrics on :{metrics_server.server_address[1]}"
            if metrics_server is not None
            else ""
        )
        print(
            f"repro service listening on {server.host}:{server.port} "
            f"(backend={backend.name}, "
            f"caching={'on' if service.cache is not None else 'off'}"
            f"{exposition})",
            flush=True,
        )

    port = args.port if args.port is not None else DEFAULT_PORT
    try:
        serve_forever(service, args.host, port, on_ready=ready)
    except KeyboardInterrupt:
        pass
    finally:
        if metrics_server is not None:
            metrics_server.shutdown()
        backend.close()
    return 0


def _cmd_submit(args) -> int:
    parser = args.parser
    from repro.errors import ReproError, ServiceError
    from repro.service.client import ServiceClient
    from repro.service.server import DEFAULT_PORT

    port = args.port if args.port is not None else DEFAULT_PORT
    utility = args.ping or args.status or args.metrics or args.shutdown
    if not utility:
        if args.workload is not None and args.scenario is not None:
            workloads = [args.workload]
            scenarios = _split_names(
                parser, args.scenario, "scenario", available_scenarios()
            )
            if args.workload not in available_workloads():
                parser.error(
                    f"unknown workload {args.workload!r}; "
                    f"known: {available_workloads()}"
                )
        elif args.workloads is not None and args.scenarios is not None:
            workloads = _split_names(
                parser, args.workloads, "workload", available_workloads()
            )
            scenarios = _split_names(
                parser, args.scenarios, "scenario", available_scenarios()
            )
        else:
            parser.error(
                "give WORKLOAD SCENARIO positionals or --workloads/--scenarios "
                "(or one of --ping/--status/--shutdown)"
            )
        specs = _matrix_specs(args, parser, workloads, scenarios)

    try:
        client = ServiceClient(
            args.host, port, connect_retries=args.connect_retries
        )
    except (OSError, ServiceError) as exc:
        print(
            f"cannot reach repro service at {args.host}:{port}: {exc}",
            file=sys.stderr,
        )
        return 1

    with client:
        if args.ping:
            print(json.dumps(client.ping(), indent=2, sort_keys=True))
            return 0
        if args.status:
            print(json.dumps(client.status(), indent=2, sort_keys=True))
            return 0
        if args.metrics:
            print(json.dumps(client.metrics(), indent=2, sort_keys=True))
            return 0
        if args.shutdown:
            client.shutdown()
            print("server shutting down")
            return 0

        stream_file = None
        on_event = None
        if args.stream is not None:
            stream_file = open(args.stream, "w", encoding="utf-8")

            def on_event(event: dict, job) -> None:
                # Canonical encoding: byte-identical to a local JsonlSink.
                json.dump(
                    event, stream_file, sort_keys=True, separators=(",", ":")
                )
                stream_file.write("\n")

        def on_result(job: str, result, source: str) -> None:
            print(f"[{source}] {result.summary()}")

        try:
            outcome = client.sweep(
                specs=specs,
                stream=args.stream is not None,
                monitors=args.monitors,
                on_event=on_event,
                on_result=on_result,
                trace=args.trace_spans is not None,
            )
        except (ServiceError, ReproError) as exc:
            print(f"service error: {exc}", file=sys.stderr)
            return 1
        finally:
            if stream_file is not None:
                stream_file.close()
                print(f"  wrote events {args.stream}")

    if args.trace_spans is not None:
        sink = ChromeTraceSink()
        for span in outcome.spans:
            sink.emit(span)
        sink.write(args.trace_spans)
        print(
            f"  wrote span trace {args.trace_spans} "
            f"({len(outcome.spans)} spans, trace {outcome.trace})"
        )

    by_hash = {spec.content_hash(): spec for spec in specs}
    if args.out:
        from repro.experiments.cache import write_result_entry

        for job, result in outcome.results.items():
            write_result_entry(args.out, by_hash[job], result)
        print(f"  wrote {len(outcome.results)} entries to {args.out}")
    if args.json and outcome.results:
        ordered = outcome.in_order()
        payload = (
            result_to_dict(ordered[0])
            if len(ordered) == 1
            else [result_to_dict(r) for r in ordered]
        )
        with open(args.json, "w") as f:
            json.dump(payload, f, indent=2)
        print(f"  wrote {args.json}")
    for job, message in outcome.errors.items():
        label = outcome.sources.get(job, "error")
        print(f"job {job[:12]} failed ({label}): {message}", file=sys.stderr)
    if outcome.errors:
        return 2 if any(
            source == "monitor_error" for source in outcome.sources.values()
        ) else 1
    if args.monitors and any(
        r.monitor_violations for r in outcome.results.values()
    ):
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    if argv and argv[0] not in SUBCOMMANDS and argv[0] not in ("-h", "--help"):
        # Deprecated alias: `python -m repro WL-6 codesign ...` predates
        # the subcommands and keeps working as an implicit `run`.
        warnings.warn(
            "flag-only `python -m repro WORKLOAD SCENARIO` is deprecated; "
            "use `python -m repro run WORKLOAD SCENARIO`",
            DeprecationWarning,
            stacklevel=2,
        )
        argv = ["run", *argv]
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
