"""Command-line simulation runner.

Usage::

    python -m repro WL-6 codesign
    python -m repro WL-1 all_bank --density 24 --trefw-ms 32 --windows 2
    python -m repro WL-8 codesign --json result.json
    python -m repro WL-6 all_bank,per_bank,codesign --jobs 4   # compare
    python -m repro WL-6 codesign --trace trace.json           # Perfetto
    python -m repro WL-6 codesign --metrics-out metrics.json
    python -m repro WL-6 codesign --timeseries 32 --json r.json
    python -m repro WL-6 codesign --monitors            # invariant checks
    python -m repro WL-6 codesign --monitors=strict     # fail fast
    python -m repro WL-6 codesign --profile prof.json   # engine profile
    python -m repro WL-6 codesign --checkpoint-every 1  # snapshot barriers
    python -m repro WL-6 codesign --checkpoint-every 1 --checkpoint-halt 1
    python -m repro --resume ckpt-400000.json           # continue a shard

(For regenerating the paper's figures, use ``python -m repro.experiments``.)

Runs resolve through the same serializable RunSpec pipeline as the
experiment harness: results persist in the content-addressed disk cache
(``--cache-dir``, ``REPRO_CACHE_DIR`` or ``~/.cache/repro``; disable
with ``--no-cache``), and a comma-separated scenario list fans out over
``--jobs`` worker processes.  ``--trace``/``--trace-jsonl`` and
``--metrics-out`` — and the ``repro.obs`` consumers ``--monitors`` and
``--profile`` — need the events of a *live* run, so they bypass the
result cache; with several scenarios each output file gets a
``.<scenario>`` suffix before its extension.

Exit codes with ``--monitors``: 0 clean, 1 violations collected,
2 strict-mode fail-fast.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import argparse

from repro import available_scenarios, available_workloads
from repro.core.simulator import build_system_from_spec, make_run_spec
from repro.telemetry import ChromeTraceSink, JsonlSink, Telemetry
from repro.units import ms


def result_to_dict(result) -> dict:
    """JSON-serializable view of a RunResult, with derived metrics."""
    data = result.to_dict()
    data["hmean_ipc"] = result.hmean_ipc
    data["avg_read_latency_mem_cycles"] = result.avg_read_latency_mem_cycles
    data["refresh_stall_fraction"] = result.refresh_stall_fraction
    if result.energy is not None:
        data["energy"] = {
            **result.energy.to_dict(),
            "total_mj": result.energy.total_mj,
            "refresh_fraction": result.energy.refresh_fraction,
        }
    return data


def _suffixed(path: str, name: str, multi: bool) -> str:
    """``trace.json`` -> ``trace.codesign.json`` when several scenarios
    share one output flag."""
    if not multi:
        return path
    p = Path(path)
    return str(p.with_name(f"{p.stem}.{name}{p.suffix}"))


def _checkpoint_sink(spec, name: str, args, multi: bool):
    """A ``system.run`` checkpoint sink writing files under
    ``--checkpoint-dir``, halting after ``--checkpoint-halt`` writes."""
    from repro.core.checkpoint import save_checkpoint

    directory = Path(args.checkpoint_dir)
    written: list[Path] = []

    def sink(cycle: int, state: dict) -> bool:
        path = directory / _suffixed(
            f"ckpt-{cycle}.json", name, multi
        )
        save_checkpoint(path, spec, cycle, state)
        written.append(path)
        print(f"  wrote checkpoint {path}")
        return args.checkpoint_halt is not None and (
            len(written) >= args.checkpoint_halt
        )

    return sink


def _run_observed(spec, name: str, args, multi: bool, resume=None):
    """Execute one spec live with the requested sinks/monitors attached.

    ``resume = (cycle, state)`` continues from a checkpoint; sinks and
    monitors then attach *after* system construction so the resumed
    event stream carries no duplicate construction-time events and
    concatenates cleanly with the pre-checkpoint shard's stream.
    Returns ``None`` when a ``--checkpoint-halt`` barrier stopped the
    run before completion.
    """
    telemetry = Telemetry()
    chrome = jsonl = suite = profiler = None

    def attach_sinks():
        nonlocal chrome, jsonl, suite
        if args.trace:
            chrome = telemetry.subscribe(ChromeTraceSink())
        if args.trace_jsonl:
            jsonl = telemetry.subscribe(
                JsonlSink(_suffixed(args.trace_jsonl, name, multi))
            )
        if args.monitors:
            from repro.obs.monitors import MonitorSuite

            suite = MonitorSuite(
                strict=args.monitors == "strict"
            ).attach(telemetry)

    if resume is None:
        # Attach before system construction: page allocations are
        # emitted while the System is being built, and the suite
        # buffers them until bind().
        attach_sinks()
    try:
        system = build_system_from_spec(spec, telemetry=telemetry)
        if resume is not None:
            attach_sinks()
        if suite is not None:
            suite.bind(
                system, resume_time=resume[0] if resume is not None else None
            )
        if args.profile:
            from repro.obs.profiler import EngineProfiler

            profiler = EngineProfiler()
            system.engine.set_profiler(profiler)
        sink = None
        if args.checkpoint_every is not None:
            sink = _checkpoint_sink(spec, name, args, multi)
        result = system.run(
            num_windows=spec.num_windows,
            warmup_windows=spec.warmup_windows,
            sample_windows=spec.sample_windows,
            checkpoint_every=args.checkpoint_every,
            checkpoint_sink=sink,
            resume_state=resume[1] if resume is not None else None,
        )
    finally:
        # Mid-run exceptions (including strict-mode MonitorError) must
        # still flush file sinks: complete JSONL lines beat a lost file.
        telemetry.close()
    if result is None:
        print(f"  halted at checkpoint (cycle {system.engine.now})")
        if chrome is not None:
            out = _suffixed(args.trace, name, multi)
            chrome.write(out)
            print(f"  wrote trace {out}")
        if jsonl is not None:
            print(f"  wrote events {jsonl.path} ({jsonl.written} lines)")
        return None
    if suite is not None:
        suite.finish(system.engine.now)
        result.monitor_violations = suite.violations()
        counts = ", ".join(
            f"{monitor}: {entry['violations']}"
            for monitor, entry in suite.summary().items()
            if entry["active"]
        )
        print(f"  monitors           : {counts}")
        for violation in result.monitor_violations:
            print(f"    VIOLATION {violation}")
    if profiler is not None:
        out = _suffixed(args.profile, name, multi)
        with open(out, "w") as f:
            json.dump(profiler.report(), f, indent=2)
        print(f"  wrote profile {out}")
        print("  " + profiler.format_table().replace("\n", "\n  "))
    if chrome is not None:
        out = _suffixed(args.trace, name, multi)
        chrome.write(out)
        print(f"  wrote trace {out} ({len(chrome.trace()['traceEvents'])} events)")
    if jsonl is not None:
        print(f"  wrote events {jsonl.path} ({jsonl.written} lines)")
    if args.metrics_out:
        out = _suffixed(args.metrics_out, name, multi)
        system.metrics().write(out)
        print(f"  wrote metrics {out}")
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Simulate one workload mix under one or more refresh "
                    "scenarios (comma-separated).",
    )
    parser.add_argument("workload", nargs="?", default=None,
                        help="Table 2 mix name (WL-1 .. WL-10); omitted when "
                             "resuming from a checkpoint")
    parser.add_argument(
        "scenario",
        nargs="?",
        default=None,
        help="refresh/OS scenario, or a comma-separated list of them "
             f"(known: {', '.join(available_scenarios())}); omitted when "
             "resuming from a checkpoint",
    )
    parser.add_argument("--density", type=int, default=32,
                        help="chip density in Gbit (default 32)")
    parser.add_argument("--trefw-ms", type=float, default=64.0,
                        help="retention window in ms (default 64)")
    parser.add_argument("--windows", type=float, default=2.0,
                        help="measured retention windows (default 2)")
    parser.add_argument("--warmup", type=float, default=0.25,
                        help="warm-up windows (default 0.25)")
    parser.add_argument("--refresh-scale", type=int, default=256,
                        help="simulation scaling factor (default 256)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--banks-per-task", type=int, default=None,
                        help="partition width override (co-design scenarios)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes when running several scenarios "
                             "(default: REPRO_JOBS or the CPU count)")
    parser.add_argument("--cache-dir", default=None, metavar="PATH",
                        help="persistent result-cache directory "
                             "(default: REPRO_CACHE_DIR or ~/.cache/repro)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the persistent result cache")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the full result(s) as JSON")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a Chrome trace-event JSON of the run "
                             "(load in Perfetto; bypasses the result cache)")
    parser.add_argument("--trace-jsonl", metavar="PATH", default=None,
                        help="write the raw event stream as JSON lines "
                             "(bypasses the result cache)")
    parser.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="write the flattened metrics snapshot as JSON "
                             "(bypasses the result cache)")
    parser.add_argument("--timeseries", type=int, default=None, metavar="N",
                        help="attach a timeseries with N samples per "
                             "retention window to the result")
    parser.add_argument("--monitors", nargs="?", const="collect",
                        choices=["collect", "strict"], default=None,
                        help="run invariant monitors over the event stream "
                             "(collect: report violations and exit 1 if any; "
                             "strict: fail fast with exit 2; "
                             "bypasses the result cache)")
    parser.add_argument("--profile", metavar="PATH", default=None,
                        help="profile engine dispatch per subsystem and write "
                             "the report as JSON (bypasses the result cache)")
    parser.add_argument("--checkpoint-every", type=float, default=None,
                        metavar="N",
                        help="write a checkpoint at every N retention-window "
                             "barrier (always a live run)")
    parser.add_argument("--checkpoint-dir", default=".", metavar="PATH",
                        help="directory for --checkpoint-every files "
                             "(default: current directory)")
    parser.add_argument("--checkpoint-halt", type=int, default=None,
                        metavar="K",
                        help="stop the run after writing K checkpoints "
                             "(time-sharded runs; exit 0, no result output)")
    parser.add_argument("--resume", metavar="CKPT", default=None,
                        help="resume a run from a checkpoint file; the "
                             "workload/scenario positionals must be omitted "
                             "(they are recorded in the checkpoint)")
    args = parser.parse_args(argv)

    resume = None
    if args.resume is not None:
        if args.workload is not None or args.scenario is not None:
            parser.error(
                "--resume reads workload/scenario from the checkpoint; "
                "omit the positional arguments"
            )
        from repro.core.checkpoint import load_checkpoint

        from repro.errors import ConfigError

        try:
            ckpt_spec, cycle, state = load_checkpoint(args.resume)
        except ConfigError as exc:
            print(str(exc), file=sys.stderr)
            return 1
        provenance = f"{ckpt_spec.content_hash()}@{cycle}"
        specs = [ckpt_spec.with_(resume_from=provenance)]
        scenarios = [ckpt_spec.scenario.name]
        resume = (cycle, state)
        print(f"resuming {args.resume} (cycle {cycle}, {provenance})")
    else:
        if args.workload is None or args.scenario is None:
            parser.error("workload and scenario are required (or use --resume)")
        if args.workload not in available_workloads():
            parser.error(
                f"unknown workload {args.workload!r}; "
                f"known: {available_workloads()}"
            )
        scenarios = [s.strip() for s in args.scenario.split(",") if s.strip()]
        if not scenarios:
            parser.error("no scenario given")
        for name in scenarios:
            if name not in available_scenarios():
                parser.error(
                    f"unknown scenario {name!r}; known: {available_scenarios()}"
                )

        specs = [
            make_run_spec(
                args.workload,
                name,
                num_windows=args.windows,
                warmup_windows=args.warmup,
                banks_per_task=args.banks_per_task,
                sample_windows=args.timeseries,
                density_gbit=args.density,
                trefw_ps=ms(args.trefw_ms),
                refresh_scale=args.refresh_scale,
                seed=args.seed,
            )
            for name in scenarios
        ]

    observed = (
        args.trace or args.trace_jsonl or args.metrics_out
        or args.monitors or args.profile
        or args.checkpoint_every is not None or resume is not None
    )
    results = []
    if observed:
        # Event sinks, monitors, profiles and checkpointing need a live
        # run: execute each spec in-process instead of through the cache.
        from repro.errors import MonitorError

        for spec, name in zip(specs, scenarios):
            try:
                result = _run_observed(
                    spec, name, args, multi=len(specs) > 1, resume=resume
                )
            except MonitorError as exc:
                print(f"monitor violation ({name}): {exc}", file=sys.stderr)
                return 2
            if result is not None:
                results.append(result)
    else:
        # Resolve through the sweep runner: disk cache + parallel fan-out.
        from repro.experiments.runner import SweepRunner

        runner = SweepRunner(
            jobs=args.jobs, cache_dir=args.cache_dir, use_cache=not args.no_cache
        )
        if len(specs) > 1:
            runner.prefetch(specs)
        results = [runner.run_spec(spec) for spec in specs]

    for result in results:
        print(result.summary())
        if result.energy is not None:
            print(f"  energy             : {result.energy}")
    if args.json and results:
        payload = (
            result_to_dict(results[0])
            if len(results) == 1
            else [result_to_dict(r) for r in results]
        )
        with open(args.json, "w") as f:
            json.dump(payload, f, indent=2)
        print(f"  wrote {args.json}")
    if args.monitors and any(r.monitor_violations for r in results):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
