"""Command-line simulation runner.

Usage::

    python -m repro WL-6 codesign
    python -m repro WL-1 all_bank --density 24 --trefw-ms 32 --windows 2
    python -m repro WL-8 codesign --json result.json
    python -m repro WL-6 all_bank,per_bank,codesign --jobs 4   # compare

(For regenerating the paper's figures, use ``python -m repro.experiments``.)

Runs resolve through the same serializable RunSpec pipeline as the
experiment harness: results persist in the content-addressed disk cache
(``--cache-dir``, ``REPRO_CACHE_DIR`` or ``~/.cache/repro``; disable
with ``--no-cache``), and a comma-separated scenario list fans out over
``--jobs`` worker processes.
"""

from __future__ import annotations

import json
import sys

import argparse

from repro import available_scenarios, available_workloads
from repro.core.simulator import make_run_spec
from repro.units import ms


def result_to_dict(result) -> dict:
    """JSON-serializable view of a RunResult, with derived metrics."""
    data = result.to_dict()
    data["hmean_ipc"] = result.hmean_ipc
    data["avg_read_latency_mem_cycles"] = result.avg_read_latency_mem_cycles
    data["refresh_stall_fraction"] = result.refresh_stall_fraction
    if result.energy is not None:
        data["energy"] = {
            **result.energy.to_dict(),
            "total_mj": result.energy.total_mj,
            "refresh_fraction": result.energy.refresh_fraction,
        }
    return data


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Simulate one workload mix under one or more refresh "
                    "scenarios (comma-separated).",
    )
    parser.add_argument("workload", help="Table 2 mix name (WL-1 .. WL-10)")
    parser.add_argument(
        "scenario",
        help="refresh/OS scenario, or a comma-separated list of them "
             f"(known: {', '.join(available_scenarios())})",
    )
    parser.add_argument("--density", type=int, default=32,
                        help="chip density in Gbit (default 32)")
    parser.add_argument("--trefw-ms", type=float, default=64.0,
                        help="retention window in ms (default 64)")
    parser.add_argument("--windows", type=float, default=2.0,
                        help="measured retention windows (default 2)")
    parser.add_argument("--warmup", type=float, default=0.25,
                        help="warm-up windows (default 0.25)")
    parser.add_argument("--refresh-scale", type=int, default=256,
                        help="simulation scaling factor (default 256)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--banks-per-task", type=int, default=None,
                        help="partition width override (co-design scenarios)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes when running several scenarios "
                             "(default: REPRO_JOBS or the CPU count)")
    parser.add_argument("--cache-dir", default=None, metavar="PATH",
                        help="persistent result-cache directory "
                             "(default: REPRO_CACHE_DIR or ~/.cache/repro)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the persistent result cache")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the full result(s) as JSON")
    args = parser.parse_args(argv)

    if args.workload not in available_workloads():
        parser.error(
            f"unknown workload {args.workload!r}; known: {available_workloads()}"
        )
    scenarios = [s.strip() for s in args.scenario.split(",") if s.strip()]
    if not scenarios:
        parser.error("no scenario given")
    for name in scenarios:
        if name not in available_scenarios():
            parser.error(
                f"unknown scenario {name!r}; known: {available_scenarios()}"
            )

    specs = [
        make_run_spec(
            args.workload,
            name,
            num_windows=args.windows,
            warmup_windows=args.warmup,
            banks_per_task=args.banks_per_task,
            density_gbit=args.density,
            trefw_ps=ms(args.trefw_ms),
            refresh_scale=args.refresh_scale,
            seed=args.seed,
        )
        for name in scenarios
    ]

    # Resolve through the sweep runner: disk cache + parallel fan-out.
    from repro.experiments.runner import SweepRunner

    runner = SweepRunner(
        jobs=args.jobs, cache_dir=args.cache_dir, use_cache=not args.no_cache
    )
    if len(specs) > 1:
        runner.prefetch(specs)

    results = []
    for spec in specs:
        result = runner.run_spec(spec)
        results.append(result)
        print(result.summary())
        if result.energy is not None:
            print(f"  energy             : {result.energy}")
    if args.json:
        payload = (
            result_to_dict(results[0])
            if len(results) == 1
            else [result_to_dict(r) for r in results]
        )
        with open(args.json, "w") as f:
            json.dump(payload, f, indent=2)
        print(f"  wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
