"""Reusable performance kernels for the simulator's hot paths.

Each kernel is a deterministic workload over one hot component (engine,
core, controller, refresh scheduler, address decode) returning an
operation count; :mod:`repro.bench.kernels` also provides the timing
wrapper.  The kernels are shared by ``benchmarks/test_micro.py``
(pytest-benchmark tracking) and ``scripts/bench_report.py`` (the
``BENCH_<date>.json`` perf-trajectory reports recorded by CI).

This package sits outside the simulator's pure packages: it is allowed
to read the wall clock, but everything it *measures* stays seeded and
deterministic — run-to-run variation is wall time only, never operation
or event counts.
"""

from repro.bench.kernels import (
    KERNELS,
    KernelResult,
    controller_cost_models,
    run_kernel,
    service_tier_histograms,
    wl6_codesign_end_to_end,
)

__all__ = [
    "KERNELS",
    "KernelResult",
    "controller_cost_models",
    "run_kernel",
    "service_tier_histograms",
    "wl6_codesign_end_to_end",
]
