"""Deterministic micro-kernels over the simulator's hot paths.

Every kernel builds its own fixture, runs a fixed seeded workload and
returns the number of operations performed.  Operation counts are pure
functions of the kernel arguments — two invocations must agree exactly
(that is what the CI bench job gates on); only wall time may vary.
"""

from __future__ import annotations

import hashlib
import json
import random
import time
from dataclasses import dataclass
from typing import Callable

from repro.config.dram_configs import DramOrganization
from repro.config.system_configs import default_system_config
from repro.core.engine import Engine
from repro.dram.address import AddressMapping
from repro.dram.controller import MemoryController
from repro.dram.refresh.all_bank import AllBankRefresh
from repro.dram.refresh.same_bank import SameBankSequential
from repro.dram.request import MemoryRequest, RequestType
from repro.dram.timing import DramTiming


# -- engine ------------------------------------------------------------------


def engine_event_chain(events: int = 5000) -> int:
    """The canonical engine micro: a self-rescheduling delay-1 chain.

    Mirrors ``test_engine_event_throughput`` — the ISSUE-4 2x acceptance
    bar is measured on this body.
    """
    engine = Engine()
    counter = [0]

    def tick():
        counter[0] += 1
        if counter[0] < events:
            engine.schedule(1, tick)

    engine.schedule(0, tick)
    engine.run()
    return counter[0]


def engine_handle_churn(events: int = 5000) -> int:
    """Cancellable-event churn: handle allocation plus cancellation
    compaction.

    Half the handles are cancelled before firing, so dead-stub
    compaction stays on the hot path.
    """
    engine = Engine()
    fired = [0]

    def tick(_arg=None):
        fired[0] += 1

    handles = [engine.schedule_event(i % 97 + 1, tick) for i in range(events)]
    for handle in handles[::2]:
        handle.cancel()
    engine.run()
    return fired[0]


def engine_far_future_mix(events: int = 5000) -> int:
    """Mixed near/far delays: exercises the bucket + heap spill path."""
    engine = Engine()
    rng = random.Random(11)
    seen = [0]

    def tick():
        seen[0] += 1

    for _ in range(events):
        engine.schedule(rng.choice((1, 2, 3, 500, 20_000)), tick)
    engine.run()
    return seen[0]


# -- DRAM --------------------------------------------------------------------


def _dram_fixture(refresh_scale: int = 1024):
    config = default_system_config(refresh_scale=refresh_scale)
    timing = DramTiming.from_config(config)
    org = DramOrganization()
    mapping = AddressMapping(org, total_rows_per_bank=64)
    return config, timing, org, mapping


def address_decode(decodes: int = 20_000) -> int:
    """Byte-address -> coordinate decode (memoised frame tables)."""
    _, _, _, mapping = _dram_fixture()
    rng = random.Random(7)
    addresses = [
        mapping.frame_offset_to_address(
            rng.randrange(mapping.total_frames), rng.randrange(64) * 64
        )
        for _ in range(512)
    ]
    total = 0
    for i in range(decodes):
        coord = mapping.address_to_coordinate(addresses[i % 512])
        total += coord.bank
    return decodes if total >= 0 else 0


def _request_stream(requests: int = 2000) -> tuple[int, MemoryController]:
    """Body of :func:`controller_request_stream`; returns the controller
    too so :func:`controller_cost_models` can read its dispatch model."""
    _, timing, org, mapping = _dram_fixture()
    rng = random.Random(7)
    addresses = [
        mapping.frame_offset_to_address(
            rng.randrange(mapping.total_frames), rng.randrange(64) * 64
        )
        for _ in range(requests)
    ]
    engine = Engine()
    mc = MemoryController(engine, timing, org, mapping)
    done = []
    for address in addresses:
        mc.enqueue(
            MemoryRequest(
                RequestType.READ,
                address,
                mapping.address_to_coordinate(address),
                on_complete=done.append,
            )
        )
    engine.run_until(50_000_000)
    return len(done), mc


def controller_request_stream(requests: int = 2000) -> int:
    """FR-FCFS service of a seeded random read stream."""
    return _request_stream(requests)[0]


def _drain_storm(requests: int = 2048) -> tuple[int, MemoryController]:
    """Body of :func:`controller_drain_storm`.

    Requests arrive in waves of 60 writes + 4 reads, the next wave
    issued only when the previous one has fully completed.  Each wave
    therefore pushes the pending-write count through the drain high
    watermark (54) and empties back through the low one (32), toggling
    write-drain mode exactly once per wave — the hysteresis branch and
    the drain-priority queue selection stay hot for the whole kernel.
    """
    _, timing, org, mapping = _dram_fixture()
    rng = random.Random(13)
    engine = Engine()
    mc = MemoryController(engine, timing, org, mapping)
    wave_writes = 60
    wave = wave_writes + 4
    state = {"issued": 0, "returned": 0}

    def issue_wave() -> None:
        n = min(wave, requests - state["issued"])
        state["issued"] += n
        for i in range(n):
            address = mapping.frame_offset_to_address(
                rng.randrange(mapping.total_frames), rng.randrange(64) * 64
            )
            rtype = RequestType.WRITE if i < wave_writes else RequestType.READ
            mc.enqueue(
                MemoryRequest(
                    rtype,
                    address,
                    mapping.address_to_coordinate(address),
                    on_complete=complete,
                )
            )

    def complete(request: MemoryRequest) -> None:
        state["returned"] += 1
        if state["returned"] % wave == 0 and state["issued"] < requests:
            issue_wave()

    issue_wave()
    engine.run_until(50_000_000)
    return state["returned"], mc


def controller_drain_storm(requests: int = 2048) -> int:
    """Write-drain hysteresis churn: completion-paced write waves."""
    return _drain_storm(requests)[0]


def _row_hit_locality(requests: int = 2000) -> tuple[int, MemoryController]:
    """Body of :func:`controller_row_hit_locality`.

    Eight consecutive-column reads per randomly chosen row: almost every
    pop comes out of the per-bank open-row index rather than the FIFO
    fallback, exercising the row-hit fast path end to end.
    """
    _, timing, org, mapping = _dram_fixture()
    rng = random.Random(29)
    engine = Engine()
    mc = MemoryController(engine, timing, org, mapping)
    done: list = []
    issued = 0
    while issued < requests:
        frame = rng.randrange(mapping.total_frames)
        first_column = rng.randrange(56)
        burst = min(8, requests - issued)
        for i in range(burst):
            address = mapping.frame_offset_to_address(
                frame, (first_column + i) * 64
            )
            mc.enqueue(
                MemoryRequest(
                    RequestType.READ,
                    address,
                    mapping.address_to_coordinate(address),
                    on_complete=done.append,
                )
            )
        issued += burst
    engine.run_until(50_000_000)
    return len(done), mc


def controller_row_hit_locality(requests: int = 2000) -> int:
    """Row-buffer-friendly read bursts through the open-row index."""
    return _row_hit_locality(requests)[0]


#: Controller kernels whose dispatch cost model the bench report exports.
_COST_MODEL_KERNELS: dict[str, Callable[[], tuple[int, MemoryController]]] = {
    "controller_request_stream": _request_stream,
    "controller_drain_storm": _drain_storm,
    "controller_row_hit_locality": _row_hit_locality,
}


def controller_cost_models() -> dict[str, dict]:
    """One extra (untimed) run of each controller kernel, returning its
    :meth:`MemoryController.dispatch_cost_model` counters keyed by kernel
    name.  Every value is a pure function of the kernel arguments, so the
    CI determinism gate can compare them exactly and the trend gate can
    watch the ratios for relative hot-path regressions."""
    models: dict[str, dict] = {}
    for name, impl in _COST_MODEL_KERNELS.items():
        served, mc = impl()
        model = mc.dispatch_cost_model()
        model["completed"] = served
        models[name] = model
    return models


def refresh_schedule_ticks(scenario: str = "all_bank", windows: int = 4) -> int:
    """Refresh commands issued over *windows* retention windows with an
    otherwise idle controller (batched rank wake-ups included)."""
    _, timing, org, mapping = _dram_fixture(refresh_scale=64)
    engine = Engine()
    mc = MemoryController(engine, timing, org, mapping)
    scheduler = {"all_bank": AllBankRefresh, "same_bank": SameBankSequential}[
        scenario
    ]()
    scheduler.attach(mc, engine, timing)
    scheduler.start()
    engine.run_until(timing.trefw * windows)
    return scheduler.stats.commands_issued


# -- CPU ---------------------------------------------------------------------


class _ComputeWorkload:
    """Infinite compute-only access stream (drives the fast-forward)."""

    name = "bench-compute"
    mlp = 1

    def next_access(self, task):
        from repro.workloads.benchmark import MemAccess

        return MemAccess(100, 50, None)


def core_compute_fast_forward(gaps: int = 20_000) -> int:
    """Compute-gap issue loop: one engine event per folded gap chain."""
    from repro.cpu.core import Core
    from repro.os.task import Task

    _, timing, org, mapping = _dram_fixture()
    engine = Engine()
    mc = MemoryController(engine, timing, org, mapping)
    core = Core(0, engine, mc)
    task = Task("bench", _ComputeWorkload(), task_id=0)
    task.rng = random.Random(7)
    core.run_task(task)
    engine.run_until(gaps * 50)
    core.preempt()
    return task.stats.instructions


# -- checkpoint --------------------------------------------------------------


def checkpoint_roundtrip(rounds: int = 10, refresh_scale: int = 512) -> int:
    """Snapshot -> JSON -> restore-into-fresh-system trips at a mid-run
    barrier of a WL-6 codesign run.

    Measures the full checkpoint cost a time-sharded or warm-started run
    pays per barrier: state capture, serialization both ways, system
    construction and state restore.  Returns descriptors handled
    (queued-engine entries plus in-flight requests, per round) — a pure
    function of the arguments, so the determinism gate covers the
    snapshot encoder too.
    """
    from repro.core.simulator import build_system_from_spec, make_run_spec

    spec = make_run_spec(
        "WL-6",
        "codesign",
        num_windows=1.0,
        warmup_windows=0.25,
        refresh_scale=refresh_scale,
    )
    system = build_system_from_spec(spec)
    captured: dict = {}

    def sink(cycle, state):
        captured["state"] = state
        return True

    out = system.run(
        num_windows=1.0,
        warmup_windows=0.25,
        checkpoint_every=0.5,
        checkpoint_sink=sink,
    )
    assert out is None
    entries = sum(
        len(bucket) for _, bucket in captured["state"]["engine"]["_buckets"]
    ) + len(captured["state"]["requests"])
    ops = 0
    for _ in range(rounds):
        payload = json.dumps(system.snapshot_state())
        fresh = build_system_from_spec(spec)
        fresh.restore_state(json.loads(payload))
        ops += entries
    return ops


# -- service -----------------------------------------------------------------


def _service_spec():
    from repro.core.simulator import make_run_spec

    return make_run_spec(
        "WL-9",
        "per_bank",
        num_windows=0.1,
        warmup_windows=0.02,
        refresh_scale=1024,
    )


def service_roundtrip(submissions: int = 6) -> int:
    """In-process submit loop through the full service resolution path.

    Drives one :class:`~repro.service.server.SweepService` (inline
    backend, tempdir cache) through the execute tier and then
    ``submissions - 1`` memo hits, then reboots a fresh service over the
    same cache directory for one disk-cache hit.  Returns requests
    served — a pure function of *submissions* — while the wall time
    captures per-request service overhead (key hashing, tier checks,
    metrics observation) rather than simulation work.
    """
    import asyncio
    import shutil
    import tempfile

    from repro.service.server import SweepService

    spec = _service_spec()
    cache_dir = tempfile.mkdtemp(prefix="bench-service-")
    served = 0
    try:
        service = SweepService(cache_dir=cache_dir)

        async def drive(svc, count):
            n = 0
            for _ in range(count):
                await svc.resolve(spec)
                n += 1
            return n

        served += asyncio.run(drive(service, submissions))
        rebooted = SweepService(cache_dir=cache_dir)
        served += asyncio.run(drive(rebooted, 1))
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    return served


def service_tier_histograms(submissions: int = 6) -> dict:
    """One extra (untimed) :func:`service_roundtrip`-shaped run, returning
    the deterministic half of each service's metrics snapshot keyed
    ``first`` / ``rebooted``.

    Tier counts and simulated-cycle histograms are pure functions of the
    arguments (executed=1, memo=submissions-1, cache=1, one cycle bucket
    each); wall-latency histograms are deliberately excluded.  The bench
    report records these outside the determinism signature — per-tier
    latency shape is trend information, not a gate.
    """
    import asyncio
    import shutil
    import tempfile

    from repro.service.server import SweepService

    spec = _service_spec()
    cache_dir = tempfile.mkdtemp(prefix="bench-service-")
    try:
        service = SweepService(cache_dir=cache_dir)

        async def drive(svc, count):
            for _ in range(count):
                await svc.resolve(spec)

        asyncio.run(drive(service, submissions))
        rebooted = SweepService(cache_dir=cache_dir)
        asyncio.run(drive(rebooted, 1))
        return {
            "first": service.metrics.deterministic_snapshot(),
            "rebooted": rebooted.metrics.deterministic_snapshot(),
        }
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


# -- end-to-end --------------------------------------------------------------


def wl6_codesign_end_to_end(refresh_scale: int = 64) -> dict:
    """One full WL-6 codesign run; returns wall time, events and a result
    digest (the quantities the CI determinism gate compares)."""
    from repro.core.simulator import build_system

    start = time.perf_counter()
    system = build_system("WL-6", "codesign", refresh_scale=refresh_scale)
    result = system.run()
    wall = time.perf_counter() - start
    payload = json.dumps(result.to_dict(), sort_keys=True)
    return {
        "name": "wl6_codesign_end_to_end",
        "wall_seconds": round(wall, 4),
        "events_processed": system.engine.events_processed,
        "result_sha256": hashlib.sha256(payload.encode()).hexdigest(),
        "reads_completed": result.reads_completed,
    }


# -- harness -----------------------------------------------------------------


@dataclass
class KernelResult:
    name: str
    ops: int
    wall_seconds: float

    @property
    def ops_per_sec(self) -> float:
        return self.ops / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "ops": self.ops,
            "wall_seconds": round(self.wall_seconds, 6),
            "ops_per_sec": round(self.ops_per_sec),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "KernelResult":
        return cls(
            name=data["name"],
            ops=data["ops"],
            wall_seconds=data["wall_seconds"],
        )


#: name -> zero-argument kernel callable returning its operation count.
KERNELS: dict[str, Callable[[], int]] = {
    "engine_event_chain": engine_event_chain,
    "engine_handle_churn": engine_handle_churn,
    "engine_far_future_mix": engine_far_future_mix,
    "address_decode": address_decode,
    "controller_request_stream": controller_request_stream,
    "controller_drain_storm": controller_drain_storm,
    "controller_row_hit_locality": controller_row_hit_locality,
    "refresh_all_bank_ticks": refresh_schedule_ticks,
    "refresh_same_bank_ticks": lambda: refresh_schedule_ticks("same_bank"),
    "core_compute_fast_forward": core_compute_fast_forward,
    "checkpoint_roundtrip": checkpoint_roundtrip,
    "service_roundtrip": service_roundtrip,
}


def run_kernel(name: str, repeat: int = 5) -> KernelResult:
    """Best-of-*repeat* timing of one named kernel."""
    fn = KERNELS[name]
    best = None
    ops = 0
    for _ in range(repeat):
        t0 = time.perf_counter()
        ops = fn()
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
    return KernelResult(name=name, ops=ops, wall_seconds=best or 0.0)
