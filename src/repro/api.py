"""The supported public API surface of the ``repro`` package.

Everything a user of the reproduction needs is here, with one name per
job; the internal modules behind these functions may reorganize freely,
this facade will not.

=========================  ==================================================
Call                       Does
=========================  ==================================================
:func:`run`                Simulate one workload under one scenario.
:func:`sweep`              Run a workload x scenario matrix locally, with
                           the content-addressed cache and process fan-out.
:func:`submit`             Send one spec — or a whole sweep — to a running
                           sweep service (``python -m repro serve``).
:func:`warm_start`         The measurement-boundary snapshot of a
                           warm-started spec's warm-up prefix.
:func:`diff`               Compare two result artifacts — JSON files or
                           whole sweep directories matched by spec hash.
:func:`available_scenarios` / :func:`available_workloads` /
:func:`available_policies`
                           The valid names for the axes above.
=========================  ==================================================

Spec construction (:func:`make_run_spec`) and direct execution
(:func:`run_spec`) are re-exported for callers that build sweeps
programmatically.

The old scattered entry points (``repro.core.simulator.run_simulation``
and friends) keep working behind thin :class:`DeprecationWarning` shims;
migrate to this module.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Optional, Sequence

from repro.core.results import RunResult
from repro.core.runspec import RunSpec
from repro.core.simulator import (
    _run_simulation,
    available_scenarios,
    available_workloads,
    make_run_spec,
    run_spec,
    sweep_specs,
    warm_start_state,
)
from repro.dram.refresh import available_policies

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.diff import DiffResult, ToleranceRule
    from repro.obs.sweepdiff import SweepDiffResult
    from repro.service.client import SweepOutcome

__all__ = [
    "RunResult",
    "RunSpec",
    "available_policies",
    "available_scenarios",
    "available_workloads",
    "diff",
    "figure",
    "make_run_spec",
    "run",
    "run_spec",
    "submit",
    "sweep",
    "sweep_specs",
    "warm_start",
]


def run(
    workload="WL-6",
    scenario="codesign",
    config=None,
    num_windows: float = 2.0,
    warmup_windows: float = 0.25,
    banks_per_task: Optional[int] = None,
    sample_windows: Optional[int] = None,
    telemetry=None,
    **config_overrides,
) -> RunResult:
    """Simulate one workload mix under one scenario.

    ``workload`` is a Table 2 mix name (``"WL-1"`` .. ``"WL-10"``) or an
    explicit :class:`~repro.workloads.benchmark.BenchmarkSpec` list;
    ``scenario`` a name from :func:`available_scenarios`.  Keyword
    overrides (``density_gbit``, ``trefw_ps``, ``refresh_scale``,
    ``seed``, ...) are applied on top of ``config``.  Returns a
    :class:`~repro.core.results.RunResult`.
    """
    return _run_simulation(
        workload,
        scenario,
        config,
        num_windows=num_windows,
        warmup_windows=warmup_windows,
        banks_per_task=banks_per_task,
        sample_windows=sample_windows,
        telemetry=telemetry,
        **config_overrides,
    )


def sweep(
    workloads: Sequence[str],
    scenarios: Sequence[str],
    jobs: Optional[int] = None,
    cache_dir: Optional[str | os.PathLike] = None,
    use_cache: bool = True,
    out: Optional[str | os.PathLike] = None,
    num_windows: float = 2.0,
    warmup_windows: float = 0.25,
    warmup_scenario: Optional[str] = None,
    **config_overrides,
) -> dict[str, RunResult]:
    """Run every ``workload x scenario`` cell locally.

    Decomposes through :func:`sweep_specs`, resolves through the
    memo/disk-cache/process-pool tiers of
    :class:`~repro.experiments.runner.SweepRunner` (``jobs`` worker
    processes), and returns results keyed by spec content hash.  With
    ``out`` set, one ``<hash>.json`` spec+result entry is written per
    cell — the directory format ``repro.obs diff`` and the service CLI
    share.
    """
    from repro.experiments.cache import write_result_entry
    from repro.experiments.runner import SweepRunner

    specs = sweep_specs(
        workloads,
        scenarios,
        num_windows=num_windows,
        warmup_windows=warmup_windows,
        warmup_scenario=warmup_scenario,
        **config_overrides,
    )
    runner = SweepRunner(jobs=jobs, cache_dir=cache_dir, use_cache=use_cache)
    runner.prefetch(specs)
    results = {spec.content_hash(): runner.run_spec(spec) for spec in specs}
    if out is not None:
        for spec in specs:
            write_result_entry(out, spec, results[spec.content_hash()])
    return results


def submit(
    spec: RunSpec | Sequence[RunSpec],
    host: str = "127.0.0.1",
    port: Optional[int] = None,
    stream: bool = False,
    monitors: Optional[str] = None,
    on_event=None,
) -> "RunResult | SweepOutcome":
    """Submit work to a running sweep service.

    One :class:`RunSpec` returns its :class:`RunResult`; a sequence of
    specs returns the full :class:`~repro.service.client.SweepOutcome`
    (results keyed by spec hash, per-job sources, server counters).
    Identical concurrent submissions — from this or any other client —
    collapse onto one simulation server-side.
    """
    from repro.service.client import ServiceClient
    from repro.service.server import DEFAULT_PORT

    with ServiceClient(host, port if port is not None else DEFAULT_PORT) as client:
        if isinstance(spec, RunSpec):
            result, _source = client.submit(
                spec, stream=stream, monitors=monitors, on_event=on_event
            )
            return result
        return client.sweep(
            specs=list(spec),
            stream=stream,
            monitors=monitors,
            on_event=on_event,
        )


def figure(name: int | str, **kwargs):
    """Run one paper-figure experiment and return its result records.

    ``name`` is the figure number (``9``, ``"9"`` or ``"figure9"``) or
    ``"ablations"``; keyword arguments forward to the figure module's
    ``run()`` entry point.  This replaces the deprecated ad-hoc
    ``from repro.experiments import figureN`` imports.
    """
    import importlib

    label = str(name)
    module_name = (
        label
        if label.startswith("figure") or label == "ablations"
        else f"figure{label}"
    )
    from repro.experiments import _FIGURE_MODULES

    if module_name not in _FIGURE_MODULES:
        raise ValueError(
            f"unknown figure {name!r}; known: "
            f"{sorted(_FIGURE_MODULES)}"
        )
    module = importlib.import_module(f"repro.experiments.{module_name}")
    return module.run(**kwargs)


def warm_start(spec: RunSpec, store=None) -> tuple[dict, str]:
    """The measurement-boundary snapshot of *spec*'s warm-up prefix.

    Requires ``spec.warmup_scenario``; with a
    :class:`~repro.core.checkpoint.CheckpointStore` the snapshot is
    cached by prefix-spec hash so sweeps sharing a warm-up prefix
    simulate it once.  Returns ``(state, "<hash>@<cycle>")``.
    """
    return warm_start_state(spec, store)


def diff(
    a: str | os.PathLike,
    b: str | os.PathLike,
    rules: Optional[list] = None,
) -> "DiffResult | SweepDiffResult":
    """Compare two result artifacts.

    Two JSON files diff leaf-by-leaf
    (:func:`repro.obs.diff.diff_files`); two directories diff as sweeps
    — entries matched by spec content hash, per-spec verdicts plus
    unmatched specs (:func:`repro.obs.sweepdiff.diff_sweep_dirs`).
    ``rules`` are :class:`~repro.obs.diff.ToleranceRule` instances; the
    returned object's ``exit_code`` is 0 identical / 1 within tolerance
    / 2 regression.
    """
    import pathlib

    from repro.obs.diff import diff_files
    from repro.obs.sweepdiff import diff_sweep_dirs

    path_a, path_b = pathlib.Path(a), pathlib.Path(b)
    if path_a.is_dir() and path_b.is_dir():
        return diff_sweep_dirs(path_a, path_b, rules=rules)
    if path_a.is_dir() or path_b.is_dir():
        raise ValueError(
            "diff needs two files or two directories, not one of each: "
            f"{a!r} vs {b!r}"
        )
    return diff_files(path_a, path_b, rules=rules)
