"""Unit helpers: times, sizes, and frequency conversions.

The simulation's time base is **CPU cycles** (integers).  All DRAM timing
parameters are specified in nanoseconds or memory-bus cycles and converted to
CPU cycles once, at configuration time, so the hot simulation path only ever
compares integers.
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# Sizes (bytes)
# ---------------------------------------------------------------------------

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

# ---------------------------------------------------------------------------
# Times (picoseconds, to keep integer math exact)
# ---------------------------------------------------------------------------

PS = 1
NS = 1000 * PS
US = 1000 * NS
MS = 1000 * US


def ns(value: float) -> int:
    """Convert nanoseconds to picoseconds."""
    return round(value * NS)


def us(value: float) -> int:
    """Convert microseconds to picoseconds."""
    return round(value * US)


def ms(value: float) -> int:
    """Convert milliseconds to picoseconds."""
    return round(value * MS)


def picos_to_ns(picos: int) -> float:
    """Convert picoseconds to nanoseconds (float, for reporting)."""
    return picos / NS


class ClockDomain:
    """Converts wall-clock durations into integer cycles of one clock.

    >>> cpu = ClockDomain(freq_mhz=3200)
    >>> cpu.cycles(ns(10))   # 10ns at 3.2GHz
    32
    """

    def __init__(self, freq_mhz: float):
        if freq_mhz <= 0:
            raise ValueError(f"frequency must be positive, got {freq_mhz}")
        self.freq_mhz = freq_mhz
        # cycle period in picoseconds
        self.period_ps = 1_000_000 / freq_mhz

    def cycles(self, duration_ps: int) -> int:
        """Number of whole cycles covering *duration_ps*, rounded up."""
        return math.ceil(duration_ps / self.period_ps)

    def duration_ps(self, n_cycles: int) -> int:
        """Duration of *n_cycles* in picoseconds (rounded)."""
        return round(n_cycles * self.period_ps)

    def __repr__(self) -> str:
        return f"ClockDomain({self.freq_mhz}MHz)"


def format_size(n_bytes: int) -> str:
    """Human-readable byte count, e.g. ``format_size(3 * GB) == '3.0GB'``."""
    for unit, name in ((GB, "GB"), (MB, "MB"), (KB, "KB")):
        if n_bytes >= unit:
            return f"{n_bytes / unit:.1f}{name}"
    return f"{n_bytes}B"


def format_time_ps(picos: int) -> str:
    """Human-readable duration, e.g. ``format_time_ps(ms(4)) == '4.000ms'``."""
    for unit, name in ((MS, "ms"), (US, "us"), (NS, "ns")):
        if abs(picos) >= unit:
            return f"{picos / unit:.3f}{name}"
    return f"{picos}ps"
