"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration was supplied."""


class AddressMapError(ReproError):
    """A physical address or frame cannot be decoded/encoded."""


class AllocationError(ReproError):
    """The physical-memory allocator could not satisfy a request."""


class OutOfMemoryError(AllocationError):
    """No free frame exists anywhere in physical memory."""


class SchedulerError(ReproError):
    """The OS scheduler was driven into an invalid state."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class MonitorError(SimulationError):
    """An invariant monitor observed a violation in strict mode."""


class ProtocolError(SimulationError):
    """A DRAM timing or protocol constraint was violated."""


class WireError(ReproError):
    """A malformed or incompatible frame on the service wire protocol."""


class ServiceError(ReproError):
    """The sweep service rejected a request or failed to execute a job."""


class ServiceUnavailable(ServiceError):
    """No server answered within the client's connect-retry budget."""
