"""Pluggable event sinks for the structured event stream.

Sink matrix:

==================  ============================================================
Sink                Use case
==================  ============================================================
:class:`NullSink`   Default: telemetry disabled, near-zero overhead.
:class:`RingBufferSink`
                    Keep the last *N* events in memory (post-mortem peeks).
:class:`CallbackSink`
                    Invoke a function per event (in-process consumers such as
                    :class:`~repro.core.trace.ScheduleTracer`).
:class:`JsonlSink`  Append one JSON object per event to a file; reload with
                    :func:`read_jsonl`.
:class:`ChromeTraceSink`
                    Chrome trace-event JSON loadable in Perfetto /
                    ``chrome://tracing``: refresh stretches and per-core
                    scheduler picks appear as separate tracks.
==================  ============================================================
"""

from __future__ import annotations

import json
from collections import deque
from typing import Callable, Optional

from repro.telemetry.events import (
    DramCommandEvent,
    RefreshCommandEvent,
    RefreshStretchBeginEvent,
    RefreshStretchEndEvent,
    SchedulerPickEvent,
    SpanEvent,
    TaskMigrationEvent,
    TraceEvent,
)


class EventSink:
    """Interface: receives every emitted event; ``close`` flushes."""

    def emit(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (default: nothing to do)."""


class NullSink(EventSink):
    """Discards everything."""

    def emit(self, event: TraceEvent) -> None:
        pass


class CallbackSink(EventSink):
    """Calls ``fn(event)`` for every event."""

    def __init__(self, fn: Callable[[TraceEvent], None]):
        self.fn = fn

    def emit(self, event: TraceEvent) -> None:
        self.fn(event)


class RingBufferSink(EventSink):
    """Keeps the most recent ``capacity`` events, evicting the oldest."""

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._buffer: deque[TraceEvent] = deque(maxlen=capacity)
        self.emitted = 0

    def emit(self, event: TraceEvent) -> None:
        self._buffer.append(event)
        self.emitted += 1

    def events(self) -> list[TraceEvent]:
        """Retained events, oldest first."""
        return list(self._buffer)

    @property
    def evicted(self) -> int:
        """Events pushed out of the ring by newer ones."""
        return max(0, self.emitted - len(self._buffer))

    def clear(self) -> None:
        self._buffer.clear()
        self.emitted = 0


class JsonlSink(EventSink):
    """Writes one canonical-JSON object per line to *path*.

    Usable as a context manager: ``__exit__`` closes (and therefore
    flushes) the file even when the managed block raises, so a run
    aborted mid-stream leaves a file of complete records rather than a
    truncated last line::

        with JsonlSink("events.jsonl") as sink:
            telemetry.subscribe(sink)
            system.run()
    """

    def __init__(self, path):
        self.path = path
        self._file = open(path, "w", encoding="utf-8")
        self.written = 0

    def emit(self, event: TraceEvent) -> None:
        json.dump(
            event.to_dict(), self._file, sort_keys=True, separators=(",", ":")
        )
        self._file.write("\n")
        self.written += 1

    def flush(self) -> None:
        """Push buffered records to disk without closing the sink."""
        if not self._file.closed:
            self._file.flush()

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def read_jsonl(path) -> list[TraceEvent]:
    """Reload a :class:`JsonlSink` file into typed events."""
    events = []
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line:
                events.append(TraceEvent.from_dict(json.loads(line)))
    return events


class ChromeTraceSink(EventSink):
    """Builds Chrome trace-event JSON (the Perfetto/about:tracing format).

    Track layout (one ``ts`` unit = one CPU cycle, displayed as µs):

    * pid 1 ``dram`` / tid 0 ``refresh stretches`` — one complete ("X")
      slice per same-bank refresh stretch, named ``refresh b<bank>``;
    * pid 1 ``dram`` / tid 1 ``refresh commands`` — one slice per
      individual refresh command (every policy);
    * pid 2 ``cpu`` / tid *c* ``core c`` — one slice per quantum dispatch,
      named after the running task, with conflict/refresh-bank details in
      ``args``; idle quanta are skipped;
    * task migrations appear as instant ("i") events on the destination
      core's track;
    * pid 3 ``service`` / tid *lane* — one slice per closed tracing span
      (:class:`~repro.telemetry.events.SpanEvent`), laid out in per-tier
      lanes (``SPAN_LANES``) so a whole sweep's resolution path renders
      as parallel swimlanes.  Span ``ts``/``dur`` come from the span's
      wall-clock fields (normalized so the earliest span starts at 0)
      and are therefore artifact-only: strip them with
      :func:`strip_span_walls` before comparing traces byte-for-byte.

    DRAM command events are high-volume and skipped unless
    ``include_dram_commands=True``.

    The simulation tracks (pids 1–2) are a pure function of the event
    stream: two identical runs produce byte-identical files.  Span
    slices are additionally sorted by ``(trace_id, job, span id)`` at
    export, because concurrent jobs close spans in nondeterministic
    wall order.
    """

    PID_DRAM = 1
    PID_CPU = 2
    PID_SERVICE = 3
    TID_STRETCH = 0
    TID_REFRESH_CMD = 1

    #: Span names with dedicated service lanes, in lane (tid) order.
    #: Unknown names share the overflow lane after the last entry.
    SPAN_LANES = ("resolve", "memo", "dedup", "cache", "execute",
                  "run_spec", "restore", "live")

    def __init__(self, include_dram_commands: bool = False):
        self.include_dram_commands = include_dram_commands
        self._slices: list[dict] = []
        self._span_events: list[SpanEvent] = []
        self._open_stretch: Optional[tuple[int, int]] = None  # (bank, begin)
        self._cores: set[int] = set()
        self.dropped = 0  # events outside the track layout (e.g. allocs)

    # -- event intake ---------------------------------------------------------

    def emit(self, event: TraceEvent) -> None:
        if isinstance(event, RefreshStretchBeginEvent):
            self._open_stretch = (event.bank, event.time)
        elif isinstance(event, RefreshStretchEndEvent):
            if self._open_stretch is not None:
                bank, begin = self._open_stretch
                self._open_stretch = None
                self._slices.append({
                    "name": f"refresh b{bank}",
                    "cat": "refresh",
                    "ph": "X",
                    "ts": begin,
                    "dur": max(0, event.time - begin),
                    "pid": self.PID_DRAM,
                    "tid": self.TID_STRETCH,
                    "args": {"bank": bank},
                })
        elif isinstance(event, RefreshCommandEvent):
            name = "REF" if event.all_bank else f"REFpb b{event.bank}"
            self._slices.append({
                "name": name,
                "cat": "refresh",
                "ph": "X",
                "ts": event.time,
                "dur": event.duration,
                "pid": self.PID_DRAM,
                "tid": self.TID_REFRESH_CMD,
                "args": {
                    "channel": event.channel,
                    "rank": event.rank,
                    "bank": event.bank,
                },
            })
        elif isinstance(event, SchedulerPickEvent):
            self._cores.add(event.core_id)
            if event.task_id is None:
                return  # idle quantum: leave the track empty
            self._slices.append({
                "name": event.task_name,
                "cat": "sched",
                "ph": "X",
                "ts": event.time,
                "dur": event.quantum_cycles,
                "pid": self.PID_CPU,
                "tid": event.core_id,
                "args": {
                    "task_id": event.task_id,
                    "refresh_bank": event.refresh_bank,
                    "conflict": event.conflict,
                },
            })
        elif isinstance(event, TaskMigrationEvent):
            self._cores.add(event.dst_cpu)
            self._slices.append({
                "name": f"migrate t{event.task_id}",
                "cat": "sched",
                "ph": "i",
                "s": "t",
                "ts": event.time,
                "pid": self.PID_CPU,
                "tid": event.dst_cpu,
                "args": {"task_id": event.task_id, "from": event.src_cpu},
            })
        elif isinstance(event, DramCommandEvent):
            if not self.include_dram_commands:
                self.dropped += 1
                return
            self._slices.append({
                "name": event.op,
                "cat": "dram",
                "ph": "X",
                "ts": max(0, event.time - event.latency),
                "dur": event.latency,
                "pid": self.PID_DRAM,
                "tid": 2 + event.bank,
                "args": {
                    "task_id": event.task_id,
                    "row_hit": event.row_hit,
                    "refresh_stall": event.refresh_stall,
                },
            })
        elif isinstance(event, SpanEvent):
            self._span_events.append(event)
        else:
            self.dropped += 1

    # -- export ---------------------------------------------------------------

    def _metadata(self) -> list[dict]:
        def meta(pid, tid, key, name):
            entry = {"ph": "M", "pid": pid, "name": key, "args": {"name": name}}
            if tid is not None:
                entry["tid"] = tid
            return entry

        events = [
            meta(self.PID_DRAM, None, "process_name", "dram"),
            meta(self.PID_DRAM, self.TID_STRETCH, "thread_name",
                 "refresh stretches"),
            meta(self.PID_DRAM, self.TID_REFRESH_CMD, "thread_name",
                 "refresh commands"),
            meta(self.PID_CPU, None, "process_name", "cpu"),
        ]
        for core in sorted(self._cores):
            events.append(
                meta(self.PID_CPU, core, "thread_name", f"core {core}")
            )
        if self._span_events:
            events.append(meta(self.PID_SERVICE, None, "process_name",
                               "service"))
            for tid in sorted({self._span_lane(s.name)
                               for s in self._span_events}):
                if tid < len(self.SPAN_LANES):
                    lane = self.SPAN_LANES[tid]
                else:
                    lane = "other"
                events.append(meta(self.PID_SERVICE, tid, "thread_name",
                                   lane))
        return events

    @classmethod
    def _span_lane(cls, name: str) -> int:
        try:
            return cls.SPAN_LANES.index(name)
        except ValueError:
            return len(cls.SPAN_LANES)

    def _span_slices(self) -> list[dict]:
        """Span slices in deterministic order with normalized wall times.

        Sorted by ``(trace_id, job, span id)`` — never by wall time —
        and shifted so the earliest span starts at ts 0, which keeps the
        trace small and makes the *structure* reproducible even though
        the ts/dur values themselves are wall artifacts.
        """
        if not self._span_events:
            return []
        base = min(s.wall_start_us for s in self._span_events)
        ordered = sorted(self._span_events,
                         key=lambda s: (s.trace_id, s.job, s.span_id))
        slices = []
        for span in ordered:
            slices.append({
                "name": span.name,
                "cat": "span",
                "ph": "X",
                "ts": span.wall_start_us - base,
                "dur": span.wall_dur_us,
                "pid": self.PID_SERVICE,
                "tid": self._span_lane(span.name),
                "args": {
                    "trace": span.trace_id,
                    "job": span.job,
                    "span": span.span_id,
                    "parent": span.parent,
                    "cycles": span.cycles,
                    "detail": span.detail,
                },
            })
        return slices

    def trace(self) -> dict:
        """The complete Chrome trace object (an unfinished stretch at the
        end of the run is dropped — its end time is unknown)."""
        return {
            "displayTimeUnit": "ms",
            "metadata": {"unit": "1 ts = 1 CPU cycle"},
            "traceEvents": self._metadata() + self._slices
            + self._span_slices(),
        }

    def to_json(self) -> str:
        """Deterministic JSON text (byte-identical for identical runs)."""
        return json.dumps(self.trace(), sort_keys=True, indent=1)

    def write(self, path) -> None:
        with open(path, "w", encoding="utf-8") as f:
            f.write(self.to_json())
            f.write("\n")


def strip_span_walls(trace: dict) -> dict:
    """Copy of a Chrome trace with span wall fields zeroed.

    Span slices (``cat == "span"``) carry wall-clock ``ts``/``dur``;
    zeroing them leaves only the deterministic structure (names, lanes,
    args, order), which is what two identical submissions must agree on
    byte-for-byte.  Simulation slices are untouched — their timestamps
    are simulated cycles and already deterministic.
    """
    stripped = dict(trace)
    stripped["traceEvents"] = [
        {**ev, "ts": 0, "dur": 0} if ev.get("cat") == "span" else ev
        for ev in trace.get("traceEvents", [])
    ]
    return stripped
