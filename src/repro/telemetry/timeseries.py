"""Windowed timeseries sampling attached to a run.

When a :class:`~repro.core.runspec.RunSpec` sets ``sample_windows = N``,
the system schedules :class:`TimeseriesSampler` ticks every
``tREFW / N`` cycles over the measured interval and attaches the
resulting :class:`Timeseries` to the :class:`~repro.core.results.RunResult`.
Each sample covers one interval and reports aggregate IPC, the
instantaneous controller queue depth, and the refresh-stall fraction of
the reads completing inside the interval — the quantities the paper's
timeline figures (9-11) are drawn from, now available from any run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import System


@dataclass
class TimeseriesSample:
    """Aggregates over one sampling interval ending at cycle ``t``."""

    t: int
    instructions: int
    ipc: float
    reads_completed: int
    refresh_stall_fraction: float
    queue_depth: int

    def to_dict(self) -> dict:
        return {
            "t": self.t,
            "instructions": self.instructions,
            "ipc": self.ipc,
            "reads_completed": self.reads_completed,
            "refresh_stall_fraction": self.refresh_stall_fraction,
            "queue_depth": self.queue_depth,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TimeseriesSample":
        from repro.serialize import dataclass_from_dict

        return dataclass_from_dict(cls, data)


@dataclass
class Timeseries:
    """One run's sampled timeline."""

    interval_cycles: int
    samples: list[TimeseriesSample] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "interval_cycles": self.interval_cycles,
            "samples": [s.to_dict() for s in self.samples],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Timeseries":
        if not isinstance(data, dict):
            raise ConfigError(
                f"Timeseries: expected a dict, got {type(data).__name__}"
            )
        data = dict(data)
        try:
            samples = [
                TimeseriesSample.from_dict(s) for s in data.pop("samples", [])
            ]
        except (TypeError, AttributeError) as exc:
            raise ConfigError(f"Timeseries: malformed payload ({exc})") from None
        from repro.serialize import dataclass_from_dict

        return dataclass_from_dict(cls, {**data, "samples": samples})

    def metric(self, name: str) -> list:
        """One column across all samples (e.g. ``metric("ipc")``)."""
        if name not in {f.name for f in fields(TimeseriesSample)}:
            raise ConfigError(f"unknown timeseries metric {name!r}")
        return [getattr(s, name) for s in self.samples]


class TimeseriesSampler:
    """Engine-driven periodic sampler over a system's live stats."""

    def __init__(self, system: "System", samples_per_window: int):
        if samples_per_window < 1:
            raise ConfigError(
                f"samples_per_window must be >= 1, got {samples_per_window}"
            )
        self.system = system
        self.interval = max(1, system.window_cycles // samples_per_window)
        self.timeseries = Timeseries(interval_cycles=self.interval)
        self._end = 0
        self._last_t = 0
        self._last_instructions = 0
        self._last_reads = 0
        self._last_stalled = 0

    # -- counter reads --------------------------------------------------------

    def _instructions(self) -> int:
        # Flush fast-forwarded compute-gap credits before reading.
        now = self.system.engine.now
        for core in self.system.cores:
            core.sync_accounting(now)
        return sum(t.stats.instructions for t in self.system.tasks)

    # -- driving --------------------------------------------------------------

    def start(self, measure_start: int, end: int) -> None:
        """Arm sampling ticks covering ``[measure_start, end]``."""
        mc = self.system.controller.stats
        self._end = end
        self._last_t = measure_start
        self._last_instructions = self._instructions()
        self._last_reads = mc.reads_completed
        self._last_stalled = mc.refresh_stalled_reads
        self._schedule_next()

    def _schedule_next(self) -> None:
        next_t = min(self._last_t + self.interval, self._end)
        if next_t > self.system.engine.now:
            self.system.engine.schedule_at(next_t, self._tick)

    def _tick(self) -> None:
        now = self.system.engine.now
        mc = self.system.controller.stats
        instructions = self._instructions()
        reads = mc.reads_completed
        stalled = mc.refresh_stalled_reads

        cycles = now - self._last_t
        cores = len(self.system.cores)
        delta_instr = instructions - self._last_instructions
        delta_reads = reads - self._last_reads
        delta_stalled = stalled - self._last_stalled
        self.timeseries.samples.append(
            TimeseriesSample(
                t=now,
                instructions=delta_instr,
                ipc=delta_instr / (cycles * cores) if cycles > 0 else 0.0,
                reads_completed=delta_reads,
                refresh_stall_fraction=(
                    delta_stalled / delta_reads if delta_reads > 0 else 0.0
                ),
                queue_depth=(
                    self.system.controller.read_count
                    + self.system.controller.write_count
                ),
            )
        )
        self._last_t = now
        self._last_instructions = instructions
        self._last_reads = reads
        self._last_stalled = stalled
        if now < self._end:
            self._schedule_next()

    def result(self) -> Timeseries:
        return self.timeseries

    # -- checkpoint/restore ---------------------------------------------------

    def snapshot_state(self) -> dict:
        """Accumulated samples and the delta baselines; the pending tick is
        an engine-owned event captured by the engine snapshot."""
        return {
            "timeseries": self.timeseries.to_dict(),
            "_end": self._end,
            "_last_t": self._last_t,
            "_last_instructions": self._last_instructions,
            "_last_reads": self._last_reads,
            "_last_stalled": self._last_stalled,
        }

    def restore_state(self, state: dict) -> None:
        self.timeseries = Timeseries.from_dict(state["timeseries"])
        self._end = int(state["_end"])
        self._last_t = int(state["_last_t"])
        self._last_instructions = int(state["_last_instructions"])
        self._last_reads = int(state["_last_reads"])
        self._last_stalled = int(state["_last_stalled"])
