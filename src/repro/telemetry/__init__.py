"""Unified telemetry layer: metrics registry, events, sinks, timeseries.

Three pillars (see ``docs/OBSERVABILITY.md``):

* :class:`MetricsRegistry` — hierarchical dotted-name snapshots of every
  ``*Stats`` object (``dram.ch0.rk0.bank3.row_hits``), glob-queryable and
  JSON-exportable;
* the structured event stream — typed :class:`TraceEvent` records fanned
  out by the per-system :class:`Telemetry` hub to pluggable sinks,
  including a Chrome trace-event exporter loadable in Perfetto;
* :class:`Timeseries` — windowed samples (IPC, queue depth, refresh-stall
  fraction) attached to :class:`~repro.core.results.RunResult`.
"""

from repro.telemetry.events import (
    EVENT_TYPES,
    DramCommandEvent,
    PageAllocEvent,
    RefreshCommandEvent,
    RefreshStretchBeginEvent,
    RefreshStretchEndEvent,
    SchedulerPickEvent,
    SpanEvent,
    TaskMigrationEvent,
    TraceEvent,
)
from repro.telemetry.hub import Telemetry
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.sinks import (
    CallbackSink,
    ChromeTraceSink,
    EventSink,
    JsonlSink,
    NullSink,
    RingBufferSink,
    read_jsonl,
    strip_span_walls,
)
from repro.telemetry.stats import StatsBase
from repro.telemetry.timeseries import (
    Timeseries,
    TimeseriesSample,
    TimeseriesSampler,
)
from repro.telemetry.wire import (
    SUPPORTED_WIRE_SCHEMAS,
    WIRE_SCHEMA,
    WireSink,
    decode_frame,
    encode_frame,
    event_from_frame,
    span_frame,
    span_from_frame,
    telemetry_frame,
)

__all__ = [
    "EVENT_TYPES",
    "CallbackSink",
    "ChromeTraceSink",
    "DramCommandEvent",
    "EventSink",
    "JsonlSink",
    "MetricsRegistry",
    "NullSink",
    "PageAllocEvent",
    "RefreshCommandEvent",
    "RefreshStretchBeginEvent",
    "RefreshStretchEndEvent",
    "RingBufferSink",
    "SUPPORTED_WIRE_SCHEMAS",
    "SchedulerPickEvent",
    "SpanEvent",
    "StatsBase",
    "TaskMigrationEvent",
    "Telemetry",
    "Timeseries",
    "TimeseriesSample",
    "TimeseriesSampler",
    "TraceEvent",
    "WIRE_SCHEMA",
    "WireSink",
    "decode_frame",
    "encode_frame",
    "event_from_frame",
    "read_jsonl",
    "span_frame",
    "span_from_frame",
    "strip_span_walls",
    "telemetry_frame",
]
