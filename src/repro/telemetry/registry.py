"""Hierarchical metrics registry with dotted names and glob queries.

A :class:`MetricsRegistry` maps dotted *prefixes* to metric sources; a
source is anything implementing the :meth:`snapshot` protocol (see
:mod:`repro.telemetry.stats`), a callable returning a value or dict, or
a plain dict.  :meth:`MetricsRegistry.snapshot` reads every source
*live* and flattens nested dicts into fully-dotted metric names::

    dram.ch0.rk0.bank3.row_hits   -> 172
    os.task.7.quanta              -> 12
    dram.refresh.per_bank_commands.3 -> 64

Queries use ``fnmatch`` glob patterns (``*`` does not cross dots is NOT
enforced — patterns match the full dotted name, so ``dram.*.row_hits``
and ``os.task.*`` both work).  :meth:`to_json` / :meth:`write` export a
sorted, deterministic JSON document.
"""

from __future__ import annotations

import json
from fnmatch import fnmatchcase

from repro.errors import ConfigError


def _flatten(prefix: str, value, out: dict) -> None:
    if isinstance(value, dict):
        for key, sub in value.items():
            _flatten(f"{prefix}.{key}", sub, out)
    else:
        out[prefix] = value


class MetricsRegistry:
    """Dotted-name metric tree over live stats objects."""

    def __init__(self):
        self._sources: dict[str, object] = {}

    # -- registration ---------------------------------------------------------

    def register(self, prefix: str, source) -> None:
        """Attach *source* under *prefix* (e.g. ``dram.ch0.rk0.bank3``)."""
        if not prefix or prefix != prefix.strip("."):
            raise ConfigError(f"invalid metric prefix {prefix!r}")
        if prefix in self._sources:
            raise ConfigError(f"metric prefix {prefix!r} already registered")
        self._sources[prefix] = source

    def unregister(self, prefix: str) -> None:
        if prefix not in self._sources:
            raise ConfigError(f"metric prefix {prefix!r} is not registered")
        del self._sources[prefix]

    def prefixes(self) -> list[str]:
        return sorted(self._sources)

    # -- reading --------------------------------------------------------------

    def _read(self, source) -> object:
        if hasattr(source, "snapshot"):
            return source.snapshot()
        if callable(source):
            return source()
        return source

    def snapshot(self) -> dict:
        """Flattened ``dotted.name -> value`` map, sorted by name."""
        out: dict = {}
        for prefix in sorted(self._sources):
            _flatten(prefix, self._read(self._sources[prefix]), out)
        return dict(sorted(out.items()))

    def query(self, pattern: str) -> dict:
        """Metrics whose dotted name matches the glob *pattern*."""
        return {
            name: value
            for name, value in self.snapshot().items()
            if fnmatchcase(name, pattern)
        }

    def value(self, name: str):
        """One metric by exact dotted name (:class:`ConfigError` if absent)."""
        snap = self.snapshot()
        try:
            return snap[name]
        except KeyError:
            raise ConfigError(f"unknown metric {name!r}") from None

    # -- export ---------------------------------------------------------------

    def to_json(self) -> str:
        """Deterministic JSON export of the full flattened snapshot."""
        return json.dumps(self.snapshot(), sort_keys=True, indent=1)

    def write(self, path) -> None:
        with open(path, "w", encoding="utf-8") as f:
            f.write(self.to_json())
            f.write("\n")

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._sources)} sources)"
