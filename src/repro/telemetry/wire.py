"""Wire format for telemetry and service frames.

Everything that crosses the sweep-service socket is a *frame*: one JSON
object per line (``\\n``-terminated, UTF-8, canonical key order) carrying
a ``"v"`` wire-schema tag.  The same framing is used in both directions —
client requests, server responses, and streamed telemetry all share it —
so one :func:`encode_frame`/:func:`decode_frame` pair is the entire
transport layer.

:data:`WIRE_SCHEMA` versions the frame layout, *not* the payloads inside
it: spec and result payloads carry their own schema versions
(``SPEC_SCHEMA``/``RESULT_SCHEMA``) and telemetry events their ``kind``
tags.  A server answers a ``pong`` hello frame on ``ping`` so clients
can check compatibility before submitting work.

Version negotiation
-------------------
v2 added trace-context propagation (a ``trace`` key on request frames,
``span`` frames streamed back) and the ``metrics`` op.  Both sides of a
connection accept every version in :data:`SUPPORTED_WIRE_SCHEMAS`, and
the server replies to each request *in the version the request carried*
(``encode_frame(..., version=...)``), so a v1 client keeps working
against a v2 server: it never sends the v2-only keys, and every frame it
receives is tagged ``v=1``.  Only a frame from outside the supported
range is rejected with a ``WireError``.

:class:`WireSink` is the bridge from the in-process event stream to the
wire: an :class:`~repro.telemetry.sinks.EventSink` (the PR 3 sink
interface) that renders each event as a ``telemetry`` frame and hands it
to a caller-supplied ``send`` callable.  The sweep service subscribes
one per streamed job; nothing about it is socket-specific, so tests can
collect frames in a plain list.
"""

from __future__ import annotations

import json
from typing import Callable, Optional

from repro.errors import WireError
from repro.telemetry.events import TraceEvent

from repro.telemetry.sinks import EventSink

#: Version tag of the line-oriented frame layout.  Bump on incompatible
#: changes to frame structure; v2 added trace/span context and the
#: ``metrics`` op (all additive — see SUPPORTED_WIRE_SCHEMAS).
WIRE_SCHEMA = 2

#: Frame versions this side decodes.  The server replies in the sender's
#: version, so old clients interoperate for as long as their version
#: stays in this tuple.
SUPPORTED_WIRE_SCHEMAS = (1, 2)

#: Hard cap on one encoded frame (guards the server against unbounded
#: lines from a confused client; generous for any real spec or result).
MAX_FRAME_BYTES = 16 * 1024 * 1024


def encode_frame(frame: dict, version: Optional[int] = None) -> bytes:
    """Canonical single-line encoding of *frame* (adds the ``v`` tag).

    ``version`` selects the tag for peers negotiated down to an older
    schema; the default is this side's :data:`WIRE_SCHEMA`.
    """
    if "v" not in frame:
        if version is None:
            version = WIRE_SCHEMA
        if version not in SUPPORTED_WIRE_SCHEMAS:
            raise WireError(
                f"cannot encode wire schema v={version!r}; "
                f"supported: {SUPPORTED_WIRE_SCHEMAS}"
            )
        frame = {"v": version, **frame}
    text = json.dumps(frame, sort_keys=True, separators=(",", ":"))
    return text.encode("utf-8") + b"\n"


def decode_frame(line: bytes | str) -> dict:
    """Parse one received line into a frame dict.

    Raises :class:`~repro.errors.WireError` on anything that is not a
    single JSON object of a supported wire-schema version.  The decoded
    frame keeps its ``v`` tag so the receiver can reply in kind.
    """
    if isinstance(line, bytes):
        if len(line) > MAX_FRAME_BYTES:
            raise WireError(f"frame exceeds {MAX_FRAME_BYTES} bytes")
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireError(f"frame is not UTF-8: {exc}") from None
    try:
        frame = json.loads(line)
    except ValueError as exc:
        raise WireError(f"frame is not valid JSON: {exc}") from None
    if not isinstance(frame, dict):
        raise WireError(
            f"frame must be a JSON object, got {type(frame).__name__}"
        )
    version = frame.get("v")
    if version not in SUPPORTED_WIRE_SCHEMAS:
        raise WireError(
            f"wire schema mismatch: got v={version!r}, "
            f"this side speaks v={SUPPORTED_WIRE_SCHEMAS}"
        )
    return frame


def telemetry_frame(event: TraceEvent, job: Optional[str] = None) -> dict:
    """The ``telemetry`` frame carrying one typed event.

    The ``v`` tag is added at encode time (by the sending side, in the
    peer's negotiated version), not here.
    """
    frame = {"type": "telemetry", "event": event.to_dict()}
    if job is not None:
        frame["job"] = job
    return frame


def event_from_frame(frame: dict) -> TraceEvent:
    """Reconstruct the typed event inside a ``telemetry`` frame."""
    if frame.get("type") != "telemetry" or "event" not in frame:
        raise WireError(f"not a telemetry frame: {frame.get('type')!r}")
    return TraceEvent.from_dict(frame["event"])


def span_frame(event: TraceEvent, job: Optional[str] = None) -> dict:
    """The v2 ``span`` frame carrying one closed tracing span."""
    frame = {"type": "span", "span": event.to_dict()}
    if job is not None:
        frame["job"] = job
    return frame


def span_from_frame(frame: dict) -> TraceEvent:
    """Reconstruct the :class:`~repro.telemetry.events.SpanEvent` inside
    a ``span`` frame."""
    if frame.get("type") != "span" or "span" not in frame:
        raise WireError(f"not a span frame: {frame.get('type')!r}")
    return TraceEvent.from_dict(frame["span"])


class WireSink(EventSink):
    """Event sink that streams each event over the wire as it happens.

    ``send`` receives one ready-to-encode ``telemetry`` frame dict per
    event; the sweep service passes a thread-safe enqueue bound to the
    submitting connection.  Pure function of the event stream: identical
    runs produce identical frame sequences, which is what makes a
    client-side JSONL of the streamed events byte-comparable with a
    local :class:`~repro.telemetry.sinks.JsonlSink` file.
    """

    def __init__(self, send: Callable[[dict], None], job: Optional[str] = None):
        self.send = send
        self.job = job
        self.sent = 0

    def emit(self, event: TraceEvent) -> None:
        self.send(telemetry_frame(event, self.job))
        self.sent += 1
