"""Uniform snapshot protocol for the per-component ``*Stats`` dataclasses.

Every statistics container in the simulator (``BankStats``,
``ControllerStats``, ``RefreshStats``, ``TaskStats``, ``VmStats``,
``CacheStats``) mixes in :class:`StatsBase`, which derives the whole
protocol from the dataclass field list:

``snapshot()``
    Raw field values as a dict in **declaration order** — the form the
    :class:`~repro.telemetry.registry.MetricsRegistry` flattens into
    dotted metric names.
``to_dict()``
    JSON-able form of the snapshot (nested dict keys stringified), the
    canonical serialization used for export.
``from_dict()``
    Inverse of ``to_dict`` (numeric dict keys are restored), so stats
    round-trip losslessly through JSON.

Analysis rule RPR009 asserts that every ``*Stats`` dataclass in the
simulator packages opts into this protocol.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigError


def _jsonable_value(value):
    """JSON-able view of one field value (dict keys become strings)."""
    if isinstance(value, dict):
        return {str(k): _jsonable_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable_value(v) for v in value]
    return value


def _restore_value(value):
    """Inverse of :func:`_jsonable_value`: numeric-string dict keys back
    to ints (stats dicts are keyed by bank/task indices)."""
    if isinstance(value, dict):
        out = {}
        for k, v in value.items():
            try:
                key = int(k)
            except (TypeError, ValueError):
                key = k
            out[key] = _restore_value(v)
        return out
    if isinstance(value, list):
        return [_restore_value(v) for v in value]
    return value


class StatsBase:
    """Mixin giving a stats dataclass the uniform telemetry protocol."""

    def snapshot(self) -> dict:
        """Field values in declaration order (raw, not JSON-normalized)."""
        return {
            f.name: getattr(self, f.name) for f in dataclasses.fields(self)
        }

    def to_dict(self) -> dict:
        """JSON-able snapshot: declaration-ordered, stringified dict keys."""
        return {k: _jsonable_value(v) for k, v in self.snapshot().items()}

    @classmethod
    def from_dict(cls, data: dict):
        """Reconstruct from :meth:`to_dict` output; unknown keys fail
        loudly so stale payloads are recomputed rather than mis-parsed."""
        if not isinstance(data, dict):
            raise ConfigError(
                f"{cls.__name__}: expected a dict, got {type(data).__name__}"
            )
        names = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - names)
        if unknown:
            raise ConfigError(f"{cls.__name__}: unknown field(s) {unknown}")
        return cls(**{k: _restore_value(v) for k, v in data.items()})
