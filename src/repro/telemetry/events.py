"""Typed structured events emitted by the simulator.

Each event is a small frozen dataclass with a ``kind`` tag and an
integer ``time`` in CPU cycles.  Components emit them through the
:class:`~repro.telemetry.hub.Telemetry` hub, which fans them out to the
attached sinks (ring buffer, JSONL, Chrome trace — see
:mod:`repro.telemetry.sinks`).  Emission sites are guarded by
``telemetry.enabled`` so a run without sinks never constructs an event.

Events round-trip through plain dicts: ``to_dict`` embeds the ``kind``
tag and ``TraceEvent.from_dict`` dispatches on it, which is what the
JSONL sink uses to reload a written stream.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import ClassVar, Optional

from repro.errors import ConfigError


@dataclass(frozen=True)
class TraceEvent:
    """Base event: a tagged, timestamped record."""

    kind: ClassVar[str] = "event"

    time: int

    def to_dict(self) -> dict:
        data = {"kind": self.kind}
        for f in dataclasses.fields(self):
            data[f.name] = getattr(self, f.name)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "TraceEvent":
        """Reconstruct any registered event from its ``to_dict`` form."""
        if not isinstance(data, dict):
            raise ConfigError(
                f"TraceEvent: expected a dict, got {type(data).__name__}"
            )
        data = dict(data)
        kind = data.pop("kind", None)
        try:
            event_cls = EVENT_TYPES[kind]
        except KeyError:
            raise ConfigError(
                f"unknown event kind {kind!r}; known: {sorted(EVENT_TYPES)}"
            ) from None
        try:
            return event_cls(**data)
        except TypeError as exc:
            raise ConfigError(
                f"{event_cls.__name__}: malformed payload ({exc})"
            ) from None


@dataclass(frozen=True)
class DramCommandEvent(TraceEvent):
    """One completed DRAM column access (read or write)."""

    kind: ClassVar[str] = "dram.cmd"

    op: str  # "RD" | "WR"
    channel: int
    rank: int
    bank: int
    row_hit: bool
    task_id: int
    latency: int
    refresh_stall: int
    #: Cycle the column access (CAS) was issued — the start of the bank's
    #: service interval; ``time`` is the finish.  Defaults to 0 so streams
    #: written before the field existed still reload.
    issue: int = 0


@dataclass(frozen=True)
class RefreshCommandEvent(TraceEvent):
    """One refresh command accepted by the controller.

    ``bank`` is the bank index within the rank for per-bank refresh, or
    ``-1`` with ``all_bank=True`` for a rank-wide REF.
    """

    kind: ClassVar[str] = "dram.refresh"

    channel: int
    rank: int
    bank: int
    duration: int
    all_bank: bool


@dataclass(frozen=True)
class RefreshStretchBeginEvent(TraceEvent):
    """A same-bank refresh stretch began on flat bank ``bank``."""

    kind: ClassVar[str] = "refresh.stretch_begin"

    bank: int


@dataclass(frozen=True)
class RefreshStretchEndEvent(TraceEvent):
    """The stretch on flat bank ``bank`` finished (last command done)."""

    kind: ClassVar[str] = "refresh.stretch_end"

    bank: int


@dataclass(frozen=True)
class SchedulerPickEvent(TraceEvent):
    """One quantum dispatch decision on one core."""

    kind: ClassVar[str] = "sched.pick"

    core_id: int
    task_id: Optional[int]  # None when the core goes idle
    task_name: str
    refresh_bank: Optional[int]  # None when the schedule is unpredictable
    conflict: bool  # picked task has data in the refreshed bank
    quantum_cycles: int
    #: True when the refresh-aware scheduler gave up after ``eta_thresh``
    #: candidates and fell back to the fairness pick (Algorithm 3).
    fallback: bool = False


@dataclass(frozen=True)
class PageAllocEvent(TraceEvent):
    """One page frame allocated to a task."""

    kind: ClassVar[str] = "os.alloc"

    task_id: int
    frame: int
    bank: int
    spilled: bool  # landed outside the task's possible-banks vector


@dataclass(frozen=True)
class TaskMigrationEvent(TraceEvent):
    """The load balancer moved a task between per-CPU runqueues."""

    kind: ClassVar[str] = "os.migrate"

    task_id: int
    src_cpu: int
    dst_cpu: int


@dataclass(frozen=True)
class SpanEvent(TraceEvent):
    """One closed span of the service request path.

    Spans are minted by :mod:`repro.tracing` (the only request-path
    module allowed to read the wall clock); this class is just the
    serializable record, so it lives with the other events and rides
    the same sinks and wire frames.

    The fields split along the ``bench_report`` convention:

    * deterministic — ``time`` (the span id: sequential in open order
      within one ``(trace_id, job)``), ``trace_id``, ``name`` (the tier
      tag: ``resolve``/``memo``/``dedup``/``cache``/``execute``/
      ``run_spec``/``restore``/``live``), ``job``, ``parent``,
      ``cycles`` (simulated cycles of the served result) and ``detail``
      — pure functions of the request stream, safe to gate on;
    * wall-clock — ``wall_start_us``/``wall_dur_us`` are artifact-only
      and never gated (strip with
      :func:`repro.telemetry.sinks.strip_span_walls` before comparing
      traces byte-for-byte).
    """

    kind: ClassVar[str] = "trace.span"

    trace_id: str = ""
    name: str = ""
    job: str = ""
    parent: Optional[int] = None
    cycles: int = 0
    detail: str = ""
    wall_start_us: int = 0
    wall_dur_us: int = 0

    @property
    def span_id(self) -> int:
        """Alias: a span's ``time`` is its id, not a simulation cycle."""
        return self.time


#: ``kind`` tag -> event class (used by :meth:`TraceEvent.from_dict`).
EVENT_TYPES: dict[str, type[TraceEvent]] = {
    cls.kind: cls
    for cls in (
        DramCommandEvent,
        RefreshCommandEvent,
        RefreshStretchBeginEvent,
        RefreshStretchEndEvent,
        SchedulerPickEvent,
        PageAllocEvent,
        TaskMigrationEvent,
        SpanEvent,
    )
}
