"""The telemetry hub: fan-out of structured events to attached sinks.

Every :class:`~repro.core.system.System` owns a :class:`Telemetry` hub.
With no sinks attached (the default) the hub is *disabled* and every
emission site short-circuits on the plain-attribute ``enabled`` flag
before constructing an event, so the instrumented hot paths cost one
attribute read when telemetry is off.

Sinks subscribe and unsubscribe at any time; the returned handle is the
sink itself.  The hub also carries the simulation clock (bound by the
system builder) so components without an engine reference — the page
allocator — can timestamp their events.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.telemetry.sinks import EventSink

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.engine import Engine
    from repro.telemetry.events import TraceEvent


class Telemetry:
    """Event fan-out hub with a cheap enabled flag."""

    __slots__ = ("enabled", "_sinks", "_clock")

    def __init__(self, sinks: Iterable[EventSink] = ()):
        self._sinks: list[EventSink] = list(sinks)
        self.enabled: bool = bool(self._sinks)
        self._clock: "Engine | None" = None

    # -- clock ----------------------------------------------------------------

    def bind_clock(self, engine: "Engine") -> None:
        """Attach the simulation clock used by :meth:`now`."""
        self._clock = engine

    def now(self) -> int:
        """Current simulation time (0 before a clock is bound)."""
        return self._clock.now if self._clock is not None else 0

    # -- sink management ------------------------------------------------------

    @property
    def sinks(self) -> tuple[EventSink, ...]:
        return tuple(self._sinks)

    def subscribe(self, sink: EventSink) -> EventSink:
        """Attach *sink*; returns it as the unsubscribe handle."""
        self._sinks.append(sink)
        self.enabled = True
        return sink

    def unsubscribe(self, sink: EventSink) -> None:
        """Detach *sink*; unknown sinks are ignored."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass
        self.enabled = bool(self._sinks)

    # -- emission -------------------------------------------------------------

    def emit(self, event: "TraceEvent") -> None:
        for sink in self._sinks:
            sink.emit(event)

    def close(self) -> None:
        """Close every sink (flushes file-backed ones)."""
        for sink in self._sinks:
            sink.close()

    def __repr__(self) -> str:
        return f"Telemetry(sinks={len(self._sinks)}, enabled={self.enabled})"
