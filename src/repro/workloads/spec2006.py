"""SPEC CPU2006 benchmark characterizations (reference/large inputs).

Footprints for mcf, bwaves and GemsFDTD come from the paper's
Section 5.4.1; other footprints and the LLC MPKI / locality / MLP values
are representative numbers from the published SPEC characterization
literature, calibrated so each benchmark lands in its Table 2 MPKI class
(H > 10, 1 <= M <= 10, L < 1).

The footprint-only entries at the bottom exist for the Figure 5 capacity
study, which sweeps the whole suite.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.units import GB, MB
from repro.workloads.benchmark import AccessPattern, BenchmarkSpec

SPEC_BENCHMARKS: dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in [
        # -- benchmarks used in the Table 2 mixes --------------------------------
        BenchmarkSpec(
            name="mcf",
            mpki=35.0,
            footprint_bytes=int(1.7 * GB),  # Section 5.4.1
            base_cpi=0.6,
            mlp=4,
            row_locality=0.25,
            write_fraction=0.20,
            pattern=AccessPattern.RANDOM,
        ),
        BenchmarkSpec(
            name="povray",
            mpki=0.05,
            footprint_bytes=4 * MB,
            base_cpi=0.45,
            mlp=2,
            row_locality=0.70,
            write_fraction=0.10,
            pattern=AccessPattern.RANDOM,
        ),
        BenchmarkSpec(
            name="h264ref",
            mpki=0.5,
            footprint_bytes=65 * MB,
            base_cpi=0.45,
            mlp=2,
            row_locality=0.80,
            write_fraction=0.20,
            pattern=AccessPattern.SEQUENTIAL,
        ),
        BenchmarkSpec(
            name="GemsFDTD",
            mpki=9.0,
            footprint_bytes=850 * MB,  # Section 5.4.1
            base_cpi=0.5,
            mlp=6,
            row_locality=0.60,
            write_fraction=0.35,
            pattern=AccessPattern.SEQUENTIAL,
        ),
        BenchmarkSpec(
            name="bwaves",
            mpki=15.0,
            footprint_bytes=920 * MB,  # Section 5.4.1
            base_cpi=0.5,
            mlp=8,
            row_locality=0.75,
            write_fraction=0.35,
            pattern=AccessPattern.SEQUENTIAL,
        ),
        # -- footprint entries for the Figure 5 capacity study -------------------
        BenchmarkSpec(name="perlbench", mpki=0.8, footprint_bytes=580 * MB),
        BenchmarkSpec(name="bzip2", mpki=3.5, footprint_bytes=870 * MB),
        BenchmarkSpec(name="gcc", mpki=6.0, footprint_bytes=940 * MB),
        BenchmarkSpec(name="milc", mpki=13.0, footprint_bytes=680 * MB),
        BenchmarkSpec(name="zeusmp", mpki=5.0, footprint_bytes=510 * MB),
        BenchmarkSpec(name="gromacs", mpki=0.7, footprint_bytes=28 * MB),
        BenchmarkSpec(name="cactusADM", mpki=5.0, footprint_bytes=670 * MB),
        BenchmarkSpec(name="leslie3d", mpki=8.0, footprint_bytes=130 * MB),
        BenchmarkSpec(name="namd", mpki=0.3, footprint_bytes=46 * MB),
        BenchmarkSpec(name="gobmk", mpki=0.6, footprint_bytes=28 * MB),
        BenchmarkSpec(name="dealII", mpki=1.5, footprint_bytes=810 * MB),
        BenchmarkSpec(name="soplex", mpki=25.0, footprint_bytes=440 * MB),
        BenchmarkSpec(name="hmmer", mpki=0.5, footprint_bytes=25 * MB),
        BenchmarkSpec(name="sjeng", mpki=0.4, footprint_bytes=170 * MB),
        BenchmarkSpec(name="libquantum", mpki=25.0, footprint_bytes=96 * MB),
        BenchmarkSpec(name="omnetpp", mpki=20.0, footprint_bytes=150 * MB),
        BenchmarkSpec(name="astar", mpki=4.0, footprint_bytes=330 * MB),
        BenchmarkSpec(name="xalancbmk", mpki=18.0, footprint_bytes=420 * MB),
        BenchmarkSpec(name="sphinx3", mpki=11.0, footprint_bytes=45 * MB),
        BenchmarkSpec(name="lbm", mpki=28.0, footprint_bytes=410 * MB),
        BenchmarkSpec(name="wrf", mpki=6.0, footprint_bytes=680 * MB),
        BenchmarkSpec(name="tonto", mpki=0.5, footprint_bytes=45 * MB),
        BenchmarkSpec(name="calculix", mpki=1.3, footprint_bytes=160 * MB),
    ]
}


def spec_benchmark(name: str) -> BenchmarkSpec:
    """Look up a SPEC CPU2006 benchmark spec by name."""
    try:
        return SPEC_BENCHMARKS[name]
    except KeyError:
        raise ConfigError(
            f"unknown SPEC benchmark {name!r}; known: {sorted(SPEC_BENCHMARKS)}"
        ) from None
