"""Benchmark characterization and the statistical access-stream generator.

The paper classifies benchmarks purely by LLC MPKI (H > 10, 1 <= M <= 10,
L < 1; Table 2) and footprint (Section 5.4.1).  A
:class:`BenchmarkSpec` captures those plus the micro-characteristics the
interval core model needs (base CPI, MLP, row-buffer locality, write
fraction, access pattern).  :class:`StatisticalWorkload` turns a spec into
the per-task access stream consumed by :class:`repro.cpu.core.Core`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError


class MpkiClass(enum.Enum):
    """Memory-intensity classes of Table 2."""

    HIGH = "H"
    MEDIUM = "M"
    LOW = "L"

    @staticmethod
    def of(mpki: float) -> "MpkiClass":
        if mpki > 10:
            return MpkiClass.HIGH
        if mpki >= 1:
            return MpkiClass.MEDIUM
        return MpkiClass.LOW


class AccessPattern(enum.Enum):
    SEQUENTIAL = "sequential"  # streaming walks over the footprint
    RANDOM = "random"  # pointer-chasing / irregular


@dataclass(frozen=True)
class BenchmarkSpec:
    """Workload model parameters for one benchmark.

    ``mpki`` is LLC read-misses per kilo-instruction; ``footprint_bytes``
    the resident set with reference inputs.  Footprints for mcf, bwaves,
    stream and GemsFDTD are from the paper (Section 5.4.1); the rest are
    representative published values.  Micro-characteristics (CPI, MLP,
    locality) are calibrated estimates — see DESIGN.md Section 3.
    """

    name: str
    mpki: float
    footprint_bytes: int
    base_cpi: float = 0.5
    mlp: int = 4
    row_locality: float = 0.6
    write_fraction: float = 0.25
    pattern: AccessPattern = AccessPattern.RANDOM
    suite: str = "spec2006"

    @property
    def mpki_class(self) -> MpkiClass:
        return MpkiClass.of(self.mpki)

    def validate(self) -> None:
        if self.mpki < 0:
            raise ConfigError(f"{self.name}: MPKI cannot be negative")
        if self.footprint_bytes <= 0:
            raise ConfigError(f"{self.name}: footprint must be positive")
        if self.base_cpi <= 0:
            raise ConfigError(f"{self.name}: base CPI must be positive")
        if self.mlp < 1:
            raise ConfigError(f"{self.name}: MLP must be >= 1")
        if not 0.0 <= self.row_locality <= 1.0:
            raise ConfigError(f"{self.name}: row locality must be in [0,1]")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ConfigError(f"{self.name}: write fraction must be in [0,1]")

    def instructions_per_miss(self) -> float:
        """Mean instructions between LLC misses."""
        if self.mpki == 0:
            return float("inf")
        return 1000.0 / self.mpki

    def to_dict(self) -> dict:
        from dataclasses import fields

        from repro.serialize import to_jsonable

        return {f.name: to_jsonable(getattr(self, f.name)) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "BenchmarkSpec":
        from repro.serialize import dataclass_from_dict

        data = dict(data)
        try:
            data["pattern"] = AccessPattern(data["pattern"])
        except (KeyError, ValueError) as exc:
            raise ConfigError(f"BenchmarkSpec: bad access pattern ({exc})") from None
        spec = dataclass_from_dict(cls, data)
        spec.validate()
        return spec

    def __str__(self) -> str:
        return f"{self.name}({self.mpki_class.value})"


@dataclass
class MemAccess:
    """One compute-gap + LLC-miss pair produced by a workload model."""

    instructions: int
    gap_cycles: int
    address: Optional[int]  # None = pure-compute gap, no memory request
    writeback_address: Optional[int] = None


class StatisticalWorkload:
    """Generates a task's LLC-miss stream from its :class:`BenchmarkSpec`.

    * Misses arrive in **bursts** of up to ``mlp`` (out-of-order cores
      extract MLP from clustered misses): short fixed gaps inside a burst,
      an exponentially distributed long gap between bursts.  The mean over
      a whole burst equals ``1000 / MPKI`` instructions per miss, so the
      configured MPKI is preserved exactly in expectation.
    * With probability ``row_locality`` the next miss hits the same page
      (= same DRAM row) as the previous one at a new column; otherwise a
      new page is chosen — sequentially for streaming patterns, uniformly
      at random for irregular ones.
    * With probability ``write_fraction`` a dirty-victim writeback to a
      recently touched page accompanies the miss.

    A task with zero MPKI never misses; the core model handles the
    infinite gap by issuing pure-compute quanta.
    """

    #: Gap cap so a single event never skips more than ~one quantum.
    MAX_GAP_INSTRUCTIONS = 2_000_000
    #: Intra-burst gap as a fraction of the mean inter-miss gap.
    INTRA_BURST_FRACTION = 0.15

    def __init__(self, spec: BenchmarkSpec, mapping, line_bytes: int = 64):
        spec.validate()
        self.spec = spec
        self.mapping = mapping
        self.line_bytes = line_bytes
        self._columns = mapping.page_bytes // line_bytes
        self._seq_cursor = 0
        self._last_page_idx: Optional[int] = None
        self._recent_pages: list[int] = []
        self._fault_penalty = 0
        self._burst_left = 0
        mean = spec.instructions_per_miss()
        self._mean_instr = mean  # spec-derived constant; cached for next_access
        if mean == float("inf"):
            self._intra_instr = self._inter_mean = float("inf")
        else:
            burst = spec.mlp
            self._intra_instr = max(1, round(self.INTRA_BURST_FRACTION * mean))
            self._inter_mean = max(
                1.0, burst * mean - (burst - 1) * self._intra_instr
            )

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def mlp(self) -> int:
        return self.spec.mlp

    def next_access(self, task) -> MemAccess:
        """The next (gap, miss) pair for *task*."""
        rng = task.rng
        spec = self.spec

        has_memory = task.vm is not None or bool(task.frames)
        mean_instr = self._mean_instr
        if mean_instr == float("inf") or not has_memory:
            instructions = self.MAX_GAP_INSTRUCTIONS
        elif self._burst_left > 0:
            # Inside a burst: short fixed gap.
            self._burst_left -= 1
            instructions = self._intra_instr
        else:
            # Start a new burst: long exponential gap, then mlp-1 short ones.
            self._burst_left = spec.mlp - 1
            instructions = min(
                self.MAX_GAP_INSTRUCTIONS,
                max(1, int(rng.expovariate(1.0 / self._inter_mean)) + 1),
            )
        gap_cycles = max(1, int(instructions * spec.base_cpi))

        if not has_memory or mean_instr == float("inf"):
            # Footprint not yet allocated (or zero MPKI): compute-only gap.
            return MemAccess(instructions, gap_cycles, address=None)
        self._fault_penalty = 0
        address = self._next_address(task, rng)
        writeback = None
        if self._recent_pages and rng.random() < spec.write_fraction:
            victim_page = rng.choice(self._recent_pages)
            writeback = self._resident_address(task, victim_page, rng)
        # Page-fault handling time (demand paging) extends the compute gap.
        gap_cycles += self._fault_penalty
        return MemAccess(instructions, gap_cycles, address, writeback)

    # -- address stream -----------------------------------------------------------

    def _page_count(self, task) -> int:
        if task.vm is not None:
            return task.vm.footprint_pages
        return len(task.frames)

    def _next_address(self, task, rng) -> int:
        if (
            self._last_page_idx is not None
            and rng.random() < self.spec.row_locality
        ):
            page_idx = self._last_page_idx
        elif self.spec.pattern is AccessPattern.SEQUENTIAL:
            page_idx = self._seq_cursor
            self._seq_cursor = (self._seq_cursor + 1) % self._page_count(task)
        else:
            page_idx = rng.randrange(self._page_count(task))
        self._last_page_idx = page_idx
        self._remember(page_idx)
        return self._address_in(task, page_idx, rng)

    def _address_in(self, task, page_idx: int, rng) -> int:
        if task.vm is not None:
            frame, penalty = task.vm.translate(page_idx)
            self._fault_penalty += penalty
        else:
            frame = task.frames[page_idx]
        column = rng.randrange(self._columns)
        return self.mapping.frame_offset_to_address(frame, column * self.line_bytes)

    def _resident_address(self, task, page_idx: int, rng):
        """Writeback target: only resident pages get written back."""
        if task.vm is not None:
            frame = task.vm.translate_resident(page_idx)
            if frame is None:
                return None
            column = rng.randrange(self._columns)
            return self.mapping.frame_offset_to_address(
                frame, column * self.line_bytes
            )
        return self._address_in(task, page_idx, rng)

    def _remember(self, page_idx: int) -> None:
        self._recent_pages.append(page_idx)
        if len(self._recent_pages) > 8:
            del self._recent_pages[0]

    # -- checkpoint/restore -----------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Stream cursor state; the spec-derived constants are rebuilt at
        construction and not captured."""
        return {
            "_seq_cursor": self._seq_cursor,
            "_last_page_idx": self._last_page_idx,
            "_recent_pages": list(self._recent_pages),
            "_fault_penalty": self._fault_penalty,
            "_burst_left": self._burst_left,
        }

    def restore_state(self, state: dict) -> None:
        self._seq_cursor = int(state["_seq_cursor"])
        last = state["_last_page_idx"]
        self._last_page_idx = None if last is None else int(last)
        self._recent_pages = [int(p) for p in state["_recent_pages"]]
        self._fault_penalty = int(state["_fault_penalty"])
        self._burst_left = int(state["_burst_left"])
