"""NAS Parallel Benchmarks: UA (unstructured adaptive mesh), class C.

UA's irregular mesh traversal gives it medium memory intensity with poor
spatial locality — the paper classifies it M in WL-9.
"""

from __future__ import annotations

from repro.units import MB
from repro.workloads.benchmark import AccessPattern, BenchmarkSpec

NPB_UA = BenchmarkSpec(
    name="npb_ua",
    mpki=5.0,
    footprint_bytes=480 * MB,
    base_cpi=0.55,
    mlp=4,
    row_locality=0.45,
    write_fraction=0.30,
    pattern=AccessPattern.RANDOM,
    suite="nas",
)
