"""Multi-programmed workload mixes — Table 2 of the paper.

Each mix lists (benchmark, copies); a dual-core 1:4-consolidation run uses
8 tasks total.  ``scaled_mix`` rescales a mix to other task counts for the
Figure 15 sensitivity study, preserving the benchmark proportions.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.workloads.benchmark import BenchmarkSpec
from repro.workloads.nas import NPB_UA
from repro.workloads.spec2006 import spec_benchmark
from repro.workloads.stream import STREAM


def _spec(name: str) -> BenchmarkSpec:
    if name == "stream":
        return STREAM
    if name == "npb_ua":
        return NPB_UA
    return spec_benchmark(name)


#: Table 2: workload name -> list of (benchmark, copies).  The MPKI-class
#: annotations in comments match the table.
WORKLOAD_MIXES: dict[str, list[tuple[str, int]]] = {
    "WL-1": [("mcf", 8)],                                   # H
    "WL-2": [("povray", 8)],                                # L
    "WL-3": [("h264ref", 8)],                               # L
    "WL-4": [("povray", 4), ("h264ref", 4)],                # L
    "WL-5": [("GemsFDTD", 8)],                              # M
    "WL-6": [("mcf", 4), ("povray", 4)],                    # H + L
    "WL-7": [("stream", 4), ("h264ref", 4)],                # M + L
    "WL-8": [("bwaves", 4), ("h264ref", 4)],                # H + L
    "WL-9": [("npb_ua", 4), ("povray", 4)],                 # M + L
    "WL-10": [("mcf", 4), ("bwaves", 2), ("povray", 2)],    # H + L
}


def mix_names() -> list[str]:
    """Mix names in Table 2 order."""
    return list(WORKLOAD_MIXES)


def workload_mix(name: str) -> list[BenchmarkSpec]:
    """Expand a named mix into one :class:`BenchmarkSpec` per task."""
    try:
        entries = WORKLOAD_MIXES[name]
    except KeyError:
        raise ConfigError(
            f"unknown workload {name!r}; known: {mix_names()}"
        ) from None
    specs: list[BenchmarkSpec] = []
    for bench_name, copies in entries:
        specs.extend([_spec(bench_name)] * copies)
    return specs


def scaled_mix(name: str, num_tasks: int) -> list[BenchmarkSpec]:
    """A mix rescaled to *num_tasks* tasks, preserving proportions.

    Used by the Figure 15 sensitivity sweep (dual/quad cores at 1:2 and
    1:4 consolidation ratios -> 4/8/16 tasks).
    """
    if num_tasks <= 0:
        raise ConfigError("num_tasks must be positive")
    base = workload_mix(name)
    scaled: list[BenchmarkSpec] = []
    for i in range(num_tasks):
        scaled.append(base[(i * len(base)) // num_tasks])
    return scaled


def mix_label(specs: list[BenchmarkSpec]) -> str:
    """Compact human-readable label, e.g. ``mcf(4), povray(4)``."""
    counts: dict[str, int] = {}
    for spec in specs:
        counts[spec.name] = counts.get(spec.name, 0) + 1
    return ", ".join(f"{name}({n})" for name, n in counts.items())
