"""Trace-driven workload front-end.

An alternative to the statistical models: replay an explicit list of
(virtual address, is_write) records through a real
:class:`~repro.cpu.hierarchy.CacheHierarchy`; only LLC misses reach the
DRAM model.  Virtual pages are translated through the task's allocated
frames, so the allocator's bank placement applies exactly as it does for
the statistical models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.cpu.hierarchy import CacheHierarchy
from repro.errors import ConfigError
from repro.workloads.benchmark import MemAccess


@dataclass(frozen=True)
class TraceRecord:
    """One memory reference: instruction gap since the previous one,
    virtual address, and read/write flag."""

    gap_instructions: int
    vaddr: int
    is_write: bool = False


class TraceWorkload:
    """Replays a trace through a private cache hierarchy.

    The trace wraps around when exhausted, so a short trace can drive an
    arbitrarily long simulation (footprint behaviour is periodic).
    """

    def __init__(
        self,
        name: str,
        trace: Sequence[TraceRecord],
        hierarchy: CacheHierarchy,
        page_bytes: int = 4096,
        base_cpi: float = 0.5,
        mlp: int = 4,
    ):
        if not trace:
            raise ConfigError("trace must not be empty")
        self.name = name
        self.trace = list(trace)
        self.hierarchy = hierarchy
        self.page_bytes = page_bytes
        self.base_cpi = base_cpi
        self.mlp = mlp
        self._cursor = 0
        self.records_replayed = 0

    def _translate(self, task, vaddr: int) -> Optional[int]:
        """Virtual -> physical through the task's frame list (demand-zero
        pages beyond the footprint alias back into it)."""
        if not task.frames:
            return None
        vpage, offset = divmod(vaddr, self.page_bytes)
        frame = task.frames[vpage % len(task.frames)]
        return frame * self.page_bytes + offset

    def next_access(self, task) -> MemAccess:
        """Replay until the next LLC miss; hits only add to the gap."""
        instructions = 0
        extra_hit_cycles = 0
        while True:
            record = self.trace[self._cursor]
            self._cursor = (self._cursor + 1) % len(self.trace)
            self.records_replayed += 1
            instructions += max(1, record.gap_instructions)
            paddr = self._translate(task, record.vaddr)
            if paddr is None:
                gap = max(1, int(instructions * self.base_cpi))
                return MemAccess(instructions, gap, address=None)
            result = self.hierarchy.access(paddr, record.is_write)
            extra_hit_cycles += result.latency_cycles
            if result.is_llc_miss:
                gap = max(1, int(instructions * self.base_cpi) + extra_hit_cycles)
                writeback = result.writeback_address
                return MemAccess(instructions, gap, paddr, writeback)
            if self.records_replayed % len(self.trace) == 0 and instructions > 0:
                # One full pass without an LLC miss: emit a compute gap so
                # the core makes progress on cache-resident traces.
                gap = max(1, int(instructions * self.base_cpi) + extra_hit_cycles)
                return MemAccess(instructions, gap, address=None)


def sequential_trace(
    num_records: int, stride_bytes: int = 64, gap_instructions: int = 10,
    write_every: int = 0,
) -> list[TraceRecord]:
    """A unit-stride streaming trace (STREAM-like)."""
    records = []
    for i in range(num_records):
        is_write = write_every > 0 and i % write_every == write_every - 1
        records.append(
            TraceRecord(gap_instructions, i * stride_bytes, is_write)
        )
    return records


def strided_trace(
    num_records: int, stride_bytes: int, span_bytes: int,
    gap_instructions: int = 10,
) -> list[TraceRecord]:
    """A fixed-stride trace wrapping within *span_bytes*."""
    if span_bytes <= 0:
        raise ConfigError("span must be positive")
    return [
        TraceRecord(gap_instructions, (i * stride_bytes) % span_bytes, False)
        for i in range(num_records)
    ]
