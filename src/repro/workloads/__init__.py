"""Workload models: SPEC CPU2006 / STREAM / NAS characteristics and mixes."""

from repro.workloads.benchmark import (
    BenchmarkSpec,
    MemAccess,
    MpkiClass,
    StatisticalWorkload,
)
from repro.workloads.spec2006 import SPEC_BENCHMARKS, spec_benchmark
from repro.workloads.stream import STREAM
from repro.workloads.nas import NPB_UA
from repro.workloads.mixes import WORKLOAD_MIXES, workload_mix, mix_names
from repro.workloads.trace import TraceWorkload, sequential_trace, strided_trace

__all__ = [
    "BenchmarkSpec",
    "MemAccess",
    "MpkiClass",
    "StatisticalWorkload",
    "SPEC_BENCHMARKS",
    "spec_benchmark",
    "STREAM",
    "NPB_UA",
    "WORKLOAD_MIXES",
    "workload_mix",
    "mix_names",
    "TraceWorkload",
    "sequential_trace",
    "strided_trace",
]
