"""STREAM benchmark model (McCalpin; 800MB footprint per Section 5.4.1).

STREAM walks large arrays with unit stride: near-perfect row-buffer
locality, very high MLP, and a high store fraction (copy/scale/add/triad
all write one array per read pair).
"""

from __future__ import annotations

from repro.units import MB
from repro.workloads.benchmark import AccessPattern, BenchmarkSpec

STREAM = BenchmarkSpec(
    name="stream",
    mpki=8.0,
    footprint_bytes=800 * MB,  # Section 5.4.1
    base_cpi=0.45,
    mlp=10,
    row_locality=0.90,
    write_fraction=0.45,
    pattern=AccessPattern.SEQUENTIAL,
    suite="stream",
)
