"""CLI for observability tooling: ``python -m repro.obs diff a b``.

Exit codes follow :class:`~repro.obs.diff.DiffResult`: 0 identical,
1 differences all within tolerance, 2 regression (or usage error).
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.diff import ToleranceRule, diff_files


def _parse_rule(text: str, kind: str) -> ToleranceRule:
    """``PATTERN=VALUE`` -> ToleranceRule (kind: 'rel' or 'abs')."""
    pattern, sep, value = text.partition("=")
    if not sep or not pattern:
        raise argparse.ArgumentTypeError(
            f"expected PATTERN=VALUE, got {text!r}"
        )
    try:
        tol = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"tolerance in {text!r} is not a number"
        ) from None
    if tol < 0:
        raise argparse.ArgumentTypeError(f"tolerance must be >= 0: {text!r}")
    if kind == "rel":
        return ToleranceRule(pattern, rel_tol=tol)
    return ToleranceRule(pattern, abs_tol=tol)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability tooling for simulation artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    diff = sub.add_parser(
        "diff",
        help="compare two result/metrics JSON files",
        description=(
            "Compare two JSON artifacts leaf-by-leaf. Exact by default; "
            "--tol/--abs-tol loosen matching paths. Exit code: 0 identical, "
            "1 within tolerance, 2 regression."
        ),
    )
    diff.add_argument("a", help="baseline JSON file")
    diff.add_argument("b", help="candidate JSON file")
    diff.add_argument(
        "--tol",
        action="append",
        default=[],
        metavar="PATTERN=REL",
        type=lambda s: _parse_rule(s, "rel"),
        help="relative tolerance for leaf paths matching the glob "
        "(e.g. --tol 'tasks.*.avg_read_latency_cycles=1e-9')",
    )
    diff.add_argument(
        "--abs-tol",
        action="append",
        default=[],
        metavar="PATTERN=ABS",
        type=lambda s: _parse_rule(s, "abs"),
        help="absolute tolerance for leaf paths matching the glob",
    )
    diff.add_argument(
        "--quiet", action="store_true", help="suppress the report, exit code only"
    )

    args = parser.parse_args(argv)
    result = diff_files(args.a, args.b, rules=args.tol + args.abs_tol)
    if not args.quiet:
        print(result.report())
    return result.exit_code


if __name__ == "__main__":
    sys.exit(main())
