"""CLI for observability tooling.

``python -m repro.obs diff a b`` compares two JSON artifacts; exit
codes follow :class:`~repro.obs.diff.DiffResult`: 0 identical,
1 differences all within tolerance, 2 regression (or usage error).
Given two *directories* instead of files, the diff runs sweep-level:
entries are matched by spec content hash, each matched pair diffs
leaf-by-leaf under the same tolerance rules, and specs present on only
one side count as regressions (:mod:`repro.obs.sweepdiff`).

``python -m repro.obs trace events.jsonl -o trace.json`` replays one or
more JSONL event shards (in argument order) through the Chrome trace
builder — concatenating a pre-checkpoint shard with its resumed
continuation reproduces the uninterrupted run's trace byte-for-byte.

``python -m repro.obs top HOST:PORT`` polls a running sweep service's
``status`` + ``metrics`` ops and renders a live dashboard: per-tier
hit-rates, in-flight jobs, latency-histogram sparklines, and the
slowest recent spans (:mod:`repro.obs.top`).
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.obs.diff import ToleranceRule, diff_files


def _parse_rule(text: str, kind: str) -> ToleranceRule:
    """``PATTERN=VALUE`` -> ToleranceRule (kind: 'rel' or 'abs')."""
    pattern, sep, value = text.partition("=")
    if not sep or not pattern:
        raise argparse.ArgumentTypeError(
            f"expected PATTERN=VALUE, got {text!r}"
        )
    try:
        tol = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"tolerance in {text!r} is not a number"
        ) from None
    if tol < 0:
        raise argparse.ArgumentTypeError(f"tolerance must be >= 0: {text!r}")
    if kind == "rel":
        return ToleranceRule(pattern, rel_tol=tol)
    return ToleranceRule(pattern, abs_tol=tol)


def _cmd_top(args, parser) -> int:
    """Poll-and-render loop for the ``top`` dashboard."""
    import time

    from repro.errors import ServiceError
    from repro.obs.top import render_top
    from repro.service.client import ServiceClient

    host, sep, port_text = args.server.rpartition(":")
    if not sep:
        host, port_text = "127.0.0.1", args.server
    try:
        port = int(port_text)
    except ValueError:
        parser.error(f"bad server address {args.server!r}; want HOST:PORT")
    frames = 0
    try:
        with ServiceClient(host, port, connect_retries=2) as client:
            while args.iterations is None or frames < args.iterations:
                counters = client.status()
                metrics = client.metrics()
                frame = render_top(
                    counters, metrics, target=f"{host}:{port}"
                )
                if not args.no_clear and frames:
                    # Redraw in place: home the cursor and clear below.
                    print("\x1b[H\x1b[J", end="")
                print(frame, flush=True)
                frames += 1
                if args.iterations is not None and frames >= args.iterations:
                    break
                time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    except ServiceError as exc:
        print(f"service error: {exc}", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability tooling for simulation artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    diff = sub.add_parser(
        "diff",
        help="compare two result JSON files, or two sweep directories",
        description=(
            "Compare two JSON artifacts leaf-by-leaf, or two sweep "
            "directories spec-by-spec (entries matched by spec content "
            "hash; unmatched specs are regressions). Exact by default; "
            "--tol/--abs-tol loosen matching paths. Exit code: 0 identical, "
            "1 within tolerance, 2 regression."
        ),
    )
    diff.add_argument("a", help="baseline JSON file or sweep directory")
    diff.add_argument("b", help="candidate JSON file or sweep directory")
    diff.add_argument(
        "--tol",
        action="append",
        default=[],
        metavar="PATTERN=REL",
        type=lambda s: _parse_rule(s, "rel"),
        help="relative tolerance for leaf paths matching the glob "
        "(e.g. --tol 'tasks.*.avg_read_latency_cycles=1e-9')",
    )
    diff.add_argument(
        "--abs-tol",
        action="append",
        default=[],
        metavar="PATTERN=ABS",
        type=lambda s: _parse_rule(s, "abs"),
        help="absolute tolerance for leaf paths matching the glob",
    )
    diff.add_argument(
        "--quiet", action="store_true", help="suppress the report, exit code only"
    )

    trace = sub.add_parser(
        "trace",
        help="replay JSONL event shards into a Chrome trace JSON",
        description=(
            "Feed one or more JSONL event files (in order) through the "
            "Chrome trace builder. The output is a pure function of the "
            "concatenated event stream, so time-sharded runs replay to "
            "the same bytes as an uninterrupted one."
        ),
    )
    trace.add_argument("shards", nargs="+", metavar="EVENTS_JSONL",
                       help="JSONL event files, oldest shard first")
    trace.add_argument("-o", "--out", required=True, metavar="PATH",
                       help="Chrome trace JSON output path")
    trace.add_argument("--include-dram-commands", action="store_true",
                       help="keep high-volume per-command DRAM slices")

    top = sub.add_parser(
        "top",
        help="live dashboard for a running sweep service",
        description=(
            "Poll a running `python -m repro serve` instance and render "
            "tier hit-rates, in-flight jobs, latency-histogram "
            "sparklines, and the slowest recent spans."
        ),
    )
    top.add_argument("server", metavar="HOST:PORT",
                     help="service address (HOST:PORT, or just PORT "
                          "for 127.0.0.1)")
    top.add_argument("--interval", type=float, default=2.0, metavar="SEC",
                     help="seconds between polls (default 2)")
    top.add_argument("--iterations", type=int, default=None, metavar="N",
                     help="render N frames then exit (default: until ^C)")
    top.add_argument("--no-clear", action="store_true",
                     help="append frames instead of redrawing in place")

    args = parser.parse_args(argv)
    if args.command == "top":
        return _cmd_top(args, parser)
    if args.command == "trace":
        from repro.telemetry.sinks import ChromeTraceSink, read_jsonl

        sink = ChromeTraceSink(
            include_dram_commands=args.include_dram_commands
        )
        total = 0
        for shard in args.shards:
            events = read_jsonl(shard)
            for event in events:
                sink.emit(event)
            total += len(events)
        sink.write(args.out)
        print(
            f"replayed {total} events from {len(args.shards)} shard(s) "
            f"-> {args.out}"
        )
        return 0
    rules = args.tol + args.abs_tol
    a_is_dir, b_is_dir = os.path.isdir(args.a), os.path.isdir(args.b)
    if a_is_dir != b_is_dir:
        parser.error(
            "diff needs two files or two directories, not one of each"
        )
    if a_is_dir:
        from repro.obs.sweepdiff import diff_sweep_dirs

        result = diff_sweep_dirs(args.a, args.b, rules=rules)
    else:
        result = diff_files(args.a, args.b, rules=rules)
    if not args.quiet:
        print(result.report())
    return result.exit_code


if __name__ == "__main__":
    sys.exit(main())
