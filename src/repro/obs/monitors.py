"""Online invariant monitors over the typed event stream.

The paper's central claims are *stream-checkable*: they can be verified
while the simulation runs, from the events the components already emit,
without touching simulator state.  Each :class:`Monitor` subscribes to a
subset of event kinds and records structured
:class:`MonitorViolation` records; a :class:`MonitorSuite` owns the
sink subscription and the dispatch table.

Monitors deliberately recompute their expectations from *configuration*
(timing, task bank vectors), never from the scheduler state they are
checking — a monitor that read ``scheduler._commands_per_bank`` would be
blind to exactly the bugs it exists to catch.

The checks:

``RefreshStretchMonitor`` (Algorithm 1)
    Under the same-bank schedule each bank's refresh activity is one
    contiguous stretch per retention window: stretch begins are aligned
    to the ``tREFW / numTotalBanks`` grid and cycle over the banks in
    order, every per-bank refresh command lands on the stretch's bank,
    each stretch carries exactly the planned number of commands (all
    rows covered once per tREFW), and the physical stretch length stays
    within a small service-latency slack of the nominal length.

``RefreshOverlapMonitor``
    No read/write column access is issued by a bank inside one of that
    bank's refresh-busy windows.

``SchedulerConflictMonitor`` (Algorithm 3)
    A refresh-aware quantum pick never selects a task with pages in the
    bank being refreshed that quantum — unless the pick is flagged as an
    ``eta_thresh`` fairness fallback, which is *counted*, not errored.

``AllocationPartitionMonitor`` (Algorithm 2)
    Every page allocation lands inside the task's
    ``possible_banks_vector``; soft-partition spills must be flagged as
    such, and a hard partition must never spill at all.

In **strict** mode a violation raises
:class:`~repro.errors.MonitorError` at the emission site (fail-fast);
the default collect mode gathers violations for the
:class:`~repro.core.results.RunResult`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

from repro.errors import MonitorError
from repro.telemetry.events import TraceEvent
from repro.telemetry.hub import Telemetry
from repro.telemetry.sinks import CallbackSink

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.results import RunResult
    from repro.core.runspec import RunSpec
    from repro.core.system import System

#: Retained refresh windows per bank in the overlap monitor.  Old windows
#: are pruned as commands complete; the cap only matters for banks that
#: see refreshes but no traffic, where it bounds memory at the cost of
#: forgetting windows far in the past (which completed commands can no
#: longer overlap anyway).
_MAX_WINDOWS_PER_BANK = 256


@dataclass
class MonitorViolation:
    """One observed invariant violation (structured, JSON round-trip)."""

    monitor: str
    time: int
    message: str
    context: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "monitor": self.monitor,
            "time": self.time,
            "message": self.message,
            "context": self.context,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MonitorViolation":
        from repro.serialize import dataclass_from_dict

        return dataclass_from_dict(cls, data)

    def __str__(self) -> str:
        return f"[{self.monitor}] t={self.time}: {self.message}"


class Monitor:
    """Base invariant monitor: consumes events, records violations.

    Subclasses set ``name`` and ``kinds`` (the event kinds they want) and
    implement :meth:`observe`.  :meth:`bind` runs after the system is
    built and may set ``active = False`` when the invariant does not
    apply to the scenario (e.g. stretch checks under round-robin
    refresh); inactive monitors receive no events.
    """

    name = "monitor"
    #: Event ``kind`` tags this monitor consumes (dispatch filter).
    kinds: tuple[str, ...] = ()

    def __init__(self):
        self.violations: list[MonitorViolation] = []
        self.active = True
        self.strict = False
        self.events_observed = 0
        #: Cycle a resumed run re-entered the simulation at, or None for
        #: a cold run.  Set by :meth:`MonitorSuite.bind` before
        #: :meth:`bind` so monitors can tolerate intervals that straddle
        #: the restore boundary (their opening events live in the
        #: pre-checkpoint shard's stream).
        self.resume_time: Optional[int] = None

    def bind(self, system: "System") -> None:
        """Learn the invariant's parameters from the built system."""

    def observe(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def finish(self, now: Optional[int] = None) -> None:
        """End-of-run hook (close open intervals, final checks)."""

    def record(self, time: int, message: str, **context) -> None:
        violation = MonitorViolation(
            monitor=self.name, time=time, message=message, context=context
        )
        self.violations.append(violation)
        if self.strict:
            raise MonitorError(str(violation))


class RefreshStretchMonitor(Monitor):
    """Algorithm 1: each bank refreshes in one contiguous, full stretch."""

    name = "refresh_stretch"
    kinds = ("dram.refresh", "refresh.stretch_begin", "refresh.stretch_end")

    def bind(self, system: "System") -> None:
        from repro.dram.refresh.same_bank import SameBankSequential, plan_batches

        self.active = isinstance(system.refresh_scheduler, SameBankSequential)
        if not self.active:
            return
        timing = system.timing
        self._mapping = system.mapping
        self._trefw = timing.trefw
        self._total_banks = timing.total_banks
        self._stretch = timing.refresh_stretch
        # Expected schedule recomputed from timing alone — independent of
        # the scheduler instance under test.
        self._commands_per_bank, trfc_cmd = plan_batches(timing)
        # A stretch's last command can start late when an in-flight
        # demand access holds the bank (precharge + activate window) and
        # then still runs for one command time; allow that much tail.
        self._slack = timing.tRC + timing.tRP + timing.tFAW + trfc_cmd
        self._open: Optional[tuple[int, int]] = None  # (bank, begin time)
        self._commands_in_stretch = 0
        self._prev_bank: Optional[int] = None
        self.stretches_checked = 0
        # On a resumed run one stretch may straddle the restore boundary:
        # its begin (and some commands) happened in the pre-checkpoint
        # shard, so commands/end without an open stretch are tolerated
        # until the first begin proves we are back on the grid.
        self._tolerate_open_stretch = self.resume_time is not None

    def observe(self, event: TraceEvent) -> None:
        self.events_observed += 1
        kind = event.kind
        if kind == "refresh.stretch_begin":
            self._on_begin(event)
        elif kind == "dram.refresh":
            self._on_command(event)
        else:
            self._on_end(event)

    def _on_begin(self, event) -> None:
        bank, time = event.bank, event.time
        self._tolerate_open_stretch = False
        if self._open is not None:
            self.record(
                time,
                f"stretch began on bank {bank} while bank {self._open[0]}'s "
                "stretch is still open",
                bank=bank, open_bank=self._open[0],
            )
        # Begins sit exactly on the tREFW/numTotalBanks grid slot owned
        # by this bank; any drift breaks the OS-visible schedule.
        offset = (bank * self._trefw) // self._total_banks
        if (time - offset) % self._trefw != 0:
            self.record(
                time,
                f"stretch on bank {bank} began off-grid "
                f"(expected offset {offset} mod tREFW={self._trefw})",
                bank=bank, offset=offset,
            )
        if self._prev_bank is not None:
            expected = (self._prev_bank + 1) % self._total_banks
            if bank != expected:
                self.record(
                    time,
                    f"stretch order broken: bank {bank} after bank "
                    f"{self._prev_bank} (expected {expected}); a skipped "
                    "bank misses its once-per-tREFW row coverage",
                    bank=bank, expected=expected,
                )
        self._open = (bank, time)
        self._commands_in_stretch = 0

    def _on_command(self, event) -> None:
        if event.all_bank:
            self.record(
                event.time,
                "all-bank REF issued under the same-bank per-bank schedule",
                channel=event.channel, rank=event.rank,
            )
            return
        flat = self._mapping.flat_bank_index(event.channel, event.rank, event.bank)
        if self._open is None:
            if self._tolerate_open_stretch:
                return  # tail of the stretch straddling the resume boundary
            self.record(
                event.time,
                f"refresh command on bank {flat} outside any stretch",
                bank=flat,
            )
            return
        if flat != self._open[0]:
            self.record(
                event.time,
                f"refresh command on bank {flat} during bank "
                f"{self._open[0]}'s stretch (stretch not contiguous)",
                bank=flat, open_bank=self._open[0],
            )
            return
        self._commands_in_stretch += 1

    def _on_end(self, event) -> None:
        if self._open is None:
            if self._tolerate_open_stretch:
                # Closes the stretch that was open at the checkpoint; its
                # begin is in the previous shard.  Chain the bank-order
                # check from here.
                self._tolerate_open_stretch = False
                self._prev_bank = event.bank
                return
            self.record(
                event.time, f"stretch end on bank {event.bank} without a begin",
                bank=event.bank,
            )
            return
        bank, begin = self._open
        self._open = None
        self._prev_bank = bank
        self.stretches_checked += 1
        if event.bank != bank:
            self.record(
                event.time,
                f"stretch end on bank {event.bank} does not match open "
                f"bank {bank}",
                bank=event.bank, open_bank=bank,
            )
            return
        if self._commands_in_stretch != self._commands_per_bank:
            self.record(
                event.time,
                f"stretch on bank {bank} issued {self._commands_in_stretch} "
                f"commands, expected {self._commands_per_bank} "
                "(rows not covered exactly once per tREFW)",
                bank=bank,
                commands=self._commands_in_stretch,
                expected=self._commands_per_bank,
            )
        length = event.time - begin
        if length > self._stretch + self._slack:
            self.record(
                event.time,
                f"stretch on bank {bank} ran {length} cycles, beyond "
                f"tREFW/numBanks={self._stretch} (+{self._slack} slack)",
                bank=bank, length=length, limit=self._stretch + self._slack,
            )
        # A stretch ending mid-run stays open at finish(); that is not a
        # violation — its end time is simply unknown.


class RefreshOverlapMonitor(Monitor):
    """No column access is issued inside its bank's refresh window.

    The check anchors on the CAS-issue cycle (``DramCommandEvent.issue``):
    the data burst may legally outlast a precharge-then-refresh sequence,
    but the column access itself must start outside every refresh-busy
    window.  Active only for policies whose emitted refresh windows are
    solid busy intervals (all-bank, per-bank round-robin, same-bank) on
    single-subarray banks — pausing/elastic policies can end a refresh
    early, and subarray refresh blocks only part of the bank.
    """

    name = "refresh_overlap"
    kinds = ("dram.refresh", "dram.cmd")

    def bind(self, system: "System") -> None:
        from repro.dram.refresh.all_bank import AllBankRefresh
        from repro.dram.refresh.per_bank_rr import PerBankRoundRobin
        from repro.dram.refresh.same_bank import SameBankSequential

        organization = system.config.organization
        self.active = organization.subarrays_per_bank == 1 and isinstance(
            system.refresh_scheduler,
            (AllBankRefresh, PerBankRoundRobin, SameBankSequential),
        )
        if not self.active:
            return
        self._mapping = system.mapping
        self._banks_per_rank = organization.banks_per_rank
        self._windows: dict[int, deque] = {}
        self.commands_checked = 0

    def _add_window(self, flat: int, start: int, end: int) -> None:
        windows = self._windows.get(flat)
        if windows is None:
            windows = self._windows[flat] = deque(maxlen=_MAX_WINDOWS_PER_BANK)
        windows.append((start, end))

    def observe(self, event: TraceEvent) -> None:
        self.events_observed += 1
        if event.kind == "dram.refresh":
            start, end = event.time, event.time + event.duration
            if event.all_bank:
                base = self._mapping.flat_bank_index(event.channel, event.rank, 0)
                for flat in range(base, base + self._banks_per_rank):
                    self._add_window(flat, start, end)
            else:
                self._add_window(
                    self._mapping.flat_bank_index(
                        event.channel, event.rank, event.bank
                    ),
                    start,
                    end,
                )
            return
        # dram.cmd — per-bank service is serialized, so CAS times arrive
        # non-decreasing per bank and windows fully before this CAS can
        # be pruned for good.
        self.commands_checked += 1
        flat = self._mapping.flat_bank_index(event.channel, event.rank, event.bank)
        windows = self._windows.get(flat)
        if not windows:
            return
        cas = event.issue
        while windows and windows[0][1] <= cas:
            windows.popleft()
        for start, end in windows:
            if start > cas:
                break
            if cas < end:
                self.record(
                    event.time,
                    f"{event.op} CAS at {cas} issued inside refresh window "
                    f"[{start}, {end}) on bank {flat}",
                    bank=flat, cas=cas, window_start=start, window_end=end,
                    task_id=event.task_id,
                )
                break


class SchedulerConflictMonitor(Monitor):
    """Algorithm 3: refresh-aware picks avoid the refreshed bank.

    ``eta_thresh`` fairness fallbacks are expected behavior — the paper
    bounds unfairness with them — so they are tallied in
    ``fallback_picks`` rather than recorded as violations.
    """

    name = "scheduler_conflict"
    kinds = ("sched.pick",)

    def bind(self, system: "System") -> None:
        from repro.os.refresh_aware import RefreshAwareScheduler

        self.active = isinstance(system.scheduler, RefreshAwareScheduler)
        self.picks_checked = 0
        self.fallback_picks = 0

    def observe(self, event: TraceEvent) -> None:
        self.events_observed += 1
        if event.task_id is None:
            return
        self.picks_checked += 1
        if event.fallback:
            self.fallback_picks += 1
            return
        if event.conflict:
            self.record(
                event.time,
                f"core {event.core_id} picked task {event.task_id} "
                f"({event.task_name}) with data in refresh bank "
                f"{event.refresh_bank} without an eta_thresh fallback",
                core_id=event.core_id,
                task_id=event.task_id,
                refresh_bank=event.refresh_bank,
            )


class AllocationPartitionMonitor(Monitor):
    """Algorithm 2: allocations stay inside the task's bank vector.

    Under a *soft* partition, out-of-vector pages are legitimate spills
    (Section 5.4.1) but must be flagged as such on the event; under a
    *hard* partition any out-of-vector page is a violation.
    """

    name = "allocation_partition"
    kinds = ("os.alloc",)

    def bind(self, system: "System") -> None:
        from repro.os.partition import PartitionPolicy

        self.active = system.scenario.partition is not PartitionPolicy.NONE
        if not self.active:
            return
        self._vectors = {
            task.task_id: task.possible_banks for task in system.tasks
        }
        self._hard = system.scenario.partition is PartitionPolicy.HARD
        self.allocs_checked = 0
        self.spills = 0

    def observe(self, event: TraceEvent) -> None:
        self.events_observed += 1
        vector = self._vectors.get(event.task_id)
        if vector is None:
            return  # unrestricted task: nothing to contain
        self.allocs_checked += 1
        outside = event.bank not in vector
        if outside != event.spilled:
            self.record(
                event.time,
                f"alloc for task {event.task_id} in bank {event.bank} "
                f"mis-flagged: spilled={event.spilled} but bank is "
                f"{'outside' if outside else 'inside'} the vector",
                task_id=event.task_id, bank=event.bank, spilled=event.spilled,
            )
        if outside:
            self.spills += 1
            if self._hard:
                self.record(
                    event.time,
                    f"hard partition breached: task {event.task_id} "
                    f"allocated frame {event.frame} in bank {event.bank} "
                    "outside its possible_banks_vector",
                    task_id=event.task_id, bank=event.bank, frame=event.frame,
                )


def default_monitors() -> list[Monitor]:
    """One instance of every paper-invariant monitor."""
    return [
        RefreshStretchMonitor(),
        RefreshOverlapMonitor(),
        SchedulerConflictMonitor(),
        AllocationPartitionMonitor(),
    ]


class MonitorSuite:
    """Owns a monitor set, its sink subscription and event dispatch.

    Lifecycle: construct → :meth:`attach` to a telemetry hub → build the
    system against that hub → :meth:`bind` → run → :meth:`finish`.
    Events emitted between attach and bind (page allocations happen at
    system *construction*) are buffered and replayed at bind time, once
    the monitors know the system they are checking.
    """

    def __init__(
        self, monitors: Optional[Iterable[Monitor]] = None, strict: bool = False
    ):
        self.monitors = (
            list(monitors) if monitors is not None else default_monitors()
        )
        self.strict = strict
        for monitor in self.monitors:
            monitor.strict = strict
        self.sink = CallbackSink(self._observe)
        self._dispatch: dict[str, list[Monitor]] = {}
        self._backlog: list[TraceEvent] = []
        self._bound = False

    def attach(self, telemetry: Telemetry) -> "MonitorSuite":
        """Subscribe this suite's sink to *telemetry*; returns self."""
        telemetry.subscribe(self.sink)
        return self

    def bind(
        self, system: "System", resume_time: Optional[int] = None
    ) -> "MonitorSuite":
        """Bind every monitor to the built system and replay buffered
        construction-time events; returns self.  ``resume_time`` marks a
        run resumed from a checkpoint at that cycle, letting monitors
        tolerate intervals straddling the restore boundary."""
        for monitor in self.monitors:
            monitor.resume_time = resume_time
            monitor.bind(system)
            if monitor.active:
                for kind in monitor.kinds:
                    self._dispatch.setdefault(kind, []).append(monitor)
        self._bound = True
        backlog, self._backlog = self._backlog, []
        for event in backlog:
            self._observe(event)
        return self

    def _observe(self, event: TraceEvent) -> None:
        if not self._bound:
            self._backlog.append(event)
            return
        monitors = self._dispatch.get(event.kind)
        if monitors is not None:
            for monitor in monitors:
                monitor.observe(event)

    def finish(self, now: Optional[int] = None) -> None:
        for monitor in self.monitors:
            if monitor.active:
                monitor.finish(now)

    def violations(self) -> list[MonitorViolation]:
        """All violations, ordered by simulation time (stable within a
        cycle: monitor declaration order)."""
        found = [v for m in self.monitors for v in m.violations]
        found.sort(key=lambda v: v.time)
        return found

    def summary(self) -> dict:
        """Deterministic per-monitor tallies (for CLI/report output)."""
        out = {}
        for monitor in self.monitors:
            entry = {
                "active": monitor.active,
                "violations": len(monitor.violations),
            }
            if monitor.active:
                for key in (
                    "stretches_checked",
                    "commands_checked",
                    "picks_checked",
                    "fallback_picks",
                    "allocs_checked",
                    "spills",
                ):
                    value = getattr(monitor, key, None)
                    if value is not None:
                        entry[key] = value
            out[monitor.name] = entry
        return out


def run_spec_with_monitors(
    spec: "RunSpec",
    monitors: Optional[Iterable[Monitor]] = None,
    strict: bool = False,
    telemetry: Optional[Telemetry] = None,
) -> tuple["RunResult", MonitorSuite]:
    """Execute *spec* live with invariant monitors attached.

    Returns ``(result, suite)``; ``result.monitor_violations`` is set
    (``[]`` for a clean monitored run).  Always a live run — monitored
    results never come from (or go to) the sweep cache, since cached
    entries carry no event stream to check.
    """
    from repro.core.simulator import build_system_from_spec

    if telemetry is None:
        telemetry = Telemetry()
    suite = MonitorSuite(monitors, strict=strict).attach(telemetry)
    system = build_system_from_spec(spec, telemetry=telemetry)
    suite.bind(system)
    result = system.run(
        num_windows=spec.num_windows,
        warmup_windows=spec.warmup_windows,
        sample_windows=spec.sample_windows,
    )
    suite.finish(system.engine.now)
    result.monitor_violations = suite.violations()
    return result, suite
