"""Rendering for ``python -m repro.obs top`` — a live service dashboard.

Pure string-building: every function here maps the server's ``status``
and ``metrics`` frames to text, so the renderer is unit-testable without
a socket (the poll/print loop lives in :mod:`repro.obs.__main__`).
"""

from __future__ import annotations

from typing import Optional

#: Eight-level bar glyphs for histogram sparklines.
SPARK_BLOCKS = "▁▂▃▄▅▆▇█"

#: Tiers shown in the dashboard table, in display order.
TOP_TIERS = (
    "executed",
    "live",
    "memo",
    "dedup",
    "cache",
    "monitored_live",
    "monitored_memo",
    "monitored_dedup",
)

#: Slowest recent spans shown.
TOP_SPANS = 5


def sparkline(buckets: dict, width: int = 16) -> str:
    """Histogram bucket counts -> a fixed-width unicode sparkline.

    Buckets arrive keyed by edge in ascending order (``+Inf`` last);
    counts are rescaled to the eight block heights, and the line is
    padded/clipped to *width* so table columns stay aligned.
    """
    counts = list(buckets.values())
    if not counts:
        return "·" * width
    counts = counts[:width]
    peak = max(counts)
    line = "".join(
        SPARK_BLOCKS[min(len(SPARK_BLOCKS) - 1,
                         (count * len(SPARK_BLOCKS)) // (peak + 1))]
        if count else "·"
        for count in counts
    )
    return line.ljust(width, "·")


def _rate(part: int, whole: int) -> str:
    return f"{part / whole:6.1%}" if whole else "     -"


def render_tiers(metrics: dict) -> list[str]:
    """The per-tier table: hits, share of traffic, latency sparklines."""
    det = metrics.get("deterministic", {})
    tiers = det.get("tiers", {})
    cycles = det.get("cycles", {})
    wall = metrics.get("wall", {})
    total = sum(tiers.values())
    lines = [
        f"{'tier':<16} {'hits':>7} {'share':>6}  "
        f"{'cycles histogram':<16}  {'wall-latency':<16}"
    ]
    for tier in TOP_TIERS:
        hits = tiers.get(tier, 0)
        if not hits:
            continue
        lines.append(
            f"{tier:<16} {hits:>7} {_rate(hits, total)}  "
            f"{sparkline(cycles.get(tier, {}).get('buckets', {}))}  "
            f"{sparkline(wall.get(tier, {}).get('buckets', {}))}"
        )
    if len(lines) == 1:
        lines.append("(no requests served yet)")
    return lines


def render_spans(metrics: dict) -> list[str]:
    """The slowest recent spans, widest wall duration first."""
    spans = metrics.get("recent_spans", [])
    if not spans:
        return ["(no spans recorded — submit with tracing on)"]
    slowest = sorted(
        spans, key=lambda s: s.get("wall_dur_us", 0), reverse=True
    )[:TOP_SPANS]
    lines = [f"{'span':<10} {'job':<18} {'trace':<18} {'wall':>10}"]
    for span in slowest:
        lines.append(
            f"{span.get('name', '?'):<10} "
            f"{span.get('job', '')[:16]:<18} "
            f"{span.get('trace_id', '')[:16]:<18} "
            f"{span.get('wall_dur_us', 0):>8}us"
        )
    return lines


def render_top(counters: dict, metrics: dict,
               target: Optional[str] = None) -> str:
    """One full dashboard frame (header, counters, tiers, spans)."""
    header = "repro service"
    if target:
        header += f" @ {target}"
    header += (
        f" — backend={counters.get('backend', '?')}"
        f" caching={'on' if counters.get('caching') else 'off'}"
        f" inflight={counters.get('inflight', 0)}"
    )
    totals = (
        f"executed={counters.get('runs_executed', 0)} "
        f"live={counters.get('live_runs', 0)} "
        f"memo={counters.get('memo_hits', 0)} "
        f"dedup={counters.get('dedup_hits', 0)} "
        f"disk={counters.get('disk_hits', 0)} "
        f"monitored={counters.get('monitored_runs', 0)}"
    )
    sections = [
        header,
        totals,
        "",
        *render_tiers(metrics),
        "",
        "slowest recent spans (wall, artifact-only):",
        *render_spans(metrics),
    ]
    return "\n".join(sections)
