"""Observability *consumption*: invariant monitors, self-profiling, diffs.

``repro.telemetry`` (PR 3) is the emission side — typed events, metric
snapshots, sinks.  This package is the consumption side, the tooling
that turns those streams into answers:

:mod:`repro.obs.monitors`
    Online invariant monitors over the typed event stream — the paper's
    stream-checkable claims (same-bank stretch shape, no service inside
    a refresh window, refresh-aware picks, partition containment)
    checked while the simulation runs, collected as structured
    :class:`~repro.obs.monitors.MonitorViolation` records on the
    :class:`~repro.core.results.RunResult` (CLI: ``--monitors[=strict]``).
:mod:`repro.obs.profiler`
    Engine dispatch self-profiling — per-callback-owner event counts
    (deterministic) and cumulative wall time (artifact-only), exported
    via ``python -m repro ... --profile report.json``.
:mod:`repro.obs.diff`
    Cross-run comparison of result/metrics/timeseries JSON with per-path
    tolerance rules (CLI: ``python -m repro.obs diff a.json b.json``).
:mod:`repro.obs.sweepdiff`
    Sweep-level comparison of two result directories, entries matched by
    spec content hash (CLI: ``python -m repro.obs diff DIR_A DIR_B``).

Unlike the simulator packages, ``repro.obs`` is *not* a pure package:
the profiler reads the wall clock (that is its job).  Nothing in here
feeds back into simulation state — observation never changes the result.
"""

from repro.obs.diff import DiffResult, Difference, ToleranceRule, diff_files, diff_payloads
from repro.obs.monitors import (
    AllocationPartitionMonitor,
    Monitor,
    MonitorSuite,
    MonitorViolation,
    RefreshOverlapMonitor,
    RefreshStretchMonitor,
    SchedulerConflictMonitor,
    default_monitors,
    run_spec_with_monitors,
)
from repro.obs.profiler import EngineProfiler
from repro.obs.sweepdiff import SweepDiffResult, SweepEntry, diff_sweep_dirs

__all__ = [
    "AllocationPartitionMonitor",
    "DiffResult",
    "Difference",
    "EngineProfiler",
    "Monitor",
    "MonitorSuite",
    "MonitorViolation",
    "RefreshOverlapMonitor",
    "RefreshStretchMonitor",
    "SchedulerConflictMonitor",
    "SweepDiffResult",
    "SweepEntry",
    "ToleranceRule",
    "default_monitors",
    "diff_files",
    "diff_payloads",
    "diff_sweep_dirs",
    "run_spec_with_monitors",
]
