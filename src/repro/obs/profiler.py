"""Engine dispatch self-profiling: where do simulation events go?

The calendar-queue engine dispatches bare callables; it has no idea
which subsystem a callback belongs to.  :class:`EngineProfiler` recovers
that attribution after the fact from the callable itself — bound methods
resolve to their underlying function, so every ``Core._issue`` across
all cores aggregates into one row — and rolls callbacks up into
subsystems by module segment (``repro.cpu``, ``repro.dram`` …).

Two kinds of numbers come out:

* **event counts** — a pure function of the simulation, identical across
  runs and machines; safe to diff and gate on;
* **cumulative wall time** — an artifact of the machine and the moment;
  reported for human eyes only and never part of any determinism check.

The engine stays wall-clock-free (``repro.core`` is a pure package): the
profiler *injects* its clock into the instrumented dispatch loop via
``Engine.set_profiler``.
"""

from __future__ import annotations

import time


class EngineProfiler:
    """Aggregates per-callback-owner dispatch counts and wall time.

    ``clock`` is any zero-argument callable returning seconds as a float;
    it defaults to :func:`time.perf_counter` and exists as a parameter so
    tests can drive the profiler with a deterministic fake clock.
    """

    def __init__(self, clock=time.perf_counter):
        self.clock = clock
        # owner key -> [event count, cumulative seconds]
        self._stats: dict[str, list] = {}
        # callable identity -> owner key; bound methods are transient
        # objects, so the cache keys on the underlying function, which is
        # stable for the lifetime of the class.
        self._names: dict[object, str] = {}

    def record(self, fn, elapsed: float) -> None:
        """Attribute one dispatched event of ``elapsed`` seconds to *fn*."""
        target = getattr(fn, "__func__", fn)
        key = self._names.get(target)
        if key is None:
            module = getattr(target, "__module__", None) or "<unknown>"
            qualname = getattr(target, "__qualname__", None) or repr(target)
            key = self._names[target] = f"{module}.{qualname}"
        stats = self._stats.get(key)
        if stats is None:
            # Distinct callables can share a key (e.g. two lambdas from
            # the same scope) — aggregate, never reset.
            stats = self._stats[key] = [0, 0.0]
        stats[0] += 1
        stats[1] += elapsed

    @staticmethod
    def _subsystem(owner: str) -> str:
        """``repro.cpu.core.Core._issue`` -> ``cpu``; foreign code keeps
        its top-level module name."""
        parts = owner.split(".")
        if parts[0] == "repro" and len(parts) > 1:
            return parts[1]
        return parts[0]

    def report(self) -> dict:
        """JSON-able profile: per-callback and per-subsystem attribution.

        Sorted by descending event count (owner name as tie-break) so the
        row *order* is deterministic even though the times are not.
        """
        callbacks = [
            {"owner": owner, "events": stats[0], "wall_seconds": stats[1]}
            for owner, stats in self._stats.items()
        ]
        callbacks.sort(key=lambda row: (-row["events"], row["owner"]))

        rollup: dict[str, list] = {}
        for row in callbacks:
            entry = rollup.setdefault(self._subsystem(row["owner"]), [0, 0.0])
            entry[0] += row["events"]
            entry[1] += row["wall_seconds"]
        subsystems = [
            {"subsystem": name, "events": stats[0], "wall_seconds": stats[1]}
            for name, stats in rollup.items()
        ]
        subsystems.sort(key=lambda row: (-row["events"], row["subsystem"]))

        return {
            "schema": 1,
            "events_total": sum(row["events"] for row in callbacks),
            "wall_total_seconds": sum(row["wall_seconds"] for row in callbacks),
            "callbacks": callbacks,
            "subsystems": subsystems,
        }

    def format_table(self, top: int = 12) -> str:
        """Human-readable subsystem/callback table for CLI output."""
        report = self.report()
        total_events = report["events_total"] or 1
        total_wall = report["wall_total_seconds"]
        lines = [
            f"engine dispatch profile: {report['events_total']} events, "
            f"{total_wall * 1e3:.1f} ms in callbacks",
            f"  {'subsystem':<12} {'events':>10} {'share':>7} {'wall ms':>9}",
        ]
        for row in report["subsystems"]:
            lines.append(
                f"  {row['subsystem']:<12} {row['events']:>10} "
                f"{row['events'] / total_events:>6.1%} "
                f"{row['wall_seconds'] * 1e3:>9.1f}"
            )
        lines.append(f"  top callbacks (of {len(report['callbacks'])}):")
        for row in report["callbacks"][:top]:
            lines.append(
                f"    {row['events']:>10}  {row['wall_seconds'] * 1e3:>8.1f} ms"
                f"  {row['owner']}"
            )
        return "\n".join(lines)
