"""Sweep-level diffing: directory vs directory, matched by spec hash.

A sweep directory is any directory of ``*.json`` spec+result entries —
what ``python -m repro sweep --out DIR``, ``python -m repro submit --out
DIR`` and the result cache itself write (the layouts share one payload
shape, ``{"spec": ..., "result": ...}``; see
:func:`repro.experiments.cache.read_result_entry`).  Because entries are
keyed by the spec's *content*, two directories produced by different
machines, runners, or service backends can be compared without any
filename or ordering convention: a Figure-9-scale sweep regresses in one
command.

Per matched spec, the result payloads diff leaf-by-leaf with the same
:class:`~repro.obs.diff.ToleranceRule` machinery as single-file diffs.
A spec present on only one side is *unmatched* — always a regression,
like a missing leaf path: the two sweeps disagree about what was even
simulated.

Exit-code mapping follows :class:`~repro.obs.diff.DiffResult`:
0 identical everywhere, 1 differences but all within tolerance,
2 regression (any leaf regression or any unmatched spec).
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Optional

from repro.obs.diff import DiffResult, ToleranceRule, diff_payloads


@dataclass(frozen=True)
class SweepEntry:
    """One parsed spec+result entry of a sweep directory."""

    key: str  # spec content hash
    label: str  # "<workload>/<scenario>" for human-readable verdicts
    path: pathlib.Path
    result: dict


@dataclass
class SweepDiffResult:
    """Outcome of comparing two sweep directories."""

    #: Per matched spec: ``(entry_a, entry_b, DiffResult)``.
    matched: list[tuple[SweepEntry, SweepEntry, DiffResult]] = field(
        default_factory=list
    )
    unmatched_a: list[SweepEntry] = field(default_factory=list)
    unmatched_b: list[SweepEntry] = field(default_factory=list)
    #: Files that were not parseable spec+result entries, per side.
    skipped_a: list[pathlib.Path] = field(default_factory=list)
    skipped_b: list[pathlib.Path] = field(default_factory=list)

    @property
    def status(self) -> str:
        if (
            self.unmatched_a
            or self.unmatched_b
            or any(d.regressions for _, _, d in self.matched)
        ):
            return "regression"
        if any(d.differences for _, _, d in self.matched):
            return "within_tolerance"
        return "identical"

    @property
    def exit_code(self) -> int:
        return {"identical": 0, "within_tolerance": 1, "regression": 2}[
            self.status
        ]

    def report(self) -> str:
        lines = [
            f"{self.status}: {len(self.matched)} specs matched, "
            f"{len(self.unmatched_a)} only in A, "
            f"{len(self.unmatched_b)} only in B"
        ]
        for entry_a, _entry_b, diff in sorted(
            self.matched, key=lambda item: item[0].key
        ):
            lines.append(
                f"  {entry_a.key[:12]} {entry_a.label}: {diff.status} "
                f"({len(diff.differences)} differing leaves, "
                f"{len(diff.regressions)} regressions)"
            )
            for difference in diff.regressions:
                lines.append(f"    {difference}")
        for side, entries in (("A", self.unmatched_a), ("B", self.unmatched_b)):
            for entry in sorted(entries, key=lambda e: e.key):
                lines.append(
                    f"  {entry.key[:12]} {entry.label}: only in {side} "
                    f"({entry.path})"
                )
        skipped = len(self.skipped_a) + len(self.skipped_b)
        if skipped:
            lines.append(f"  ({skipped} non-entry JSON files skipped)")
        return "\n".join(lines)


def _entry_label(spec_payload: dict) -> str:
    workload = spec_payload.get("workload_name", "?")
    scenario = spec_payload.get("scenario", {})
    scenario_name = (
        scenario.get("name", "?") if isinstance(scenario, dict) else "?"
    )
    return f"{workload}/{scenario_name}"


def index_sweep_dir(
    directory: str | os.PathLike,
) -> tuple[dict[str, SweepEntry], list[pathlib.Path]]:
    """Scan *directory* recursively for spec+result entries.

    Returns ``(entries by spec hash, skipped files)``.  The hash is
    recomputed from the embedded spec payload — filenames are never
    trusted — so cache shards and flat sweep outputs index identically.
    A duplicate hash (same spec stored twice) keeps the first occurrence
    in sorted-path order and skips the rest.
    """
    from repro.core.runspec import RunSpec
    from repro.errors import ReproError
    from repro.experiments.cache import read_result_entry

    directory = pathlib.Path(directory)
    if not directory.is_dir():
        raise NotADirectoryError(f"{directory} is not a directory")
    entries: dict[str, SweepEntry] = {}
    skipped: list[pathlib.Path] = []
    for path in sorted(directory.rglob("*.json")):
        try:
            spec_payload, result_payload = read_result_entry(path)
            key = RunSpec.from_dict(spec_payload).content_hash()
        except (OSError, ValueError, json.JSONDecodeError, ReproError):
            skipped.append(path)
            continue
        if key not in entries:
            entries[key] = SweepEntry(
                key=key,
                label=_entry_label(spec_payload),
                path=path,
                result=result_payload,
            )
        else:
            skipped.append(path)
    return entries, skipped


def diff_sweep_dirs(
    dir_a: str | os.PathLike,
    dir_b: str | os.PathLike,
    rules: Optional[list[ToleranceRule]] = None,
) -> SweepDiffResult:
    """Compare two sweep directories spec-by-spec."""
    entries_a, skipped_a = index_sweep_dir(dir_a)
    entries_b, skipped_b = index_sweep_dir(dir_b)
    outcome = SweepDiffResult(skipped_a=skipped_a, skipped_b=skipped_b)
    for key in sorted(entries_a.keys() | entries_b.keys()):
        entry_a = entries_a.get(key)
        entry_b = entries_b.get(key)
        if entry_a is None:
            outcome.unmatched_b.append(entry_b)
        elif entry_b is None:
            outcome.unmatched_a.append(entry_a)
        else:
            outcome.matched.append(
                (
                    entry_a,
                    entry_b,
                    diff_payloads(entry_a.result, entry_b.result, rules),
                )
            )
    return outcome
