"""Cross-run diffing of result/metrics JSON with per-path tolerances.

Two runs of the same :class:`~repro.core.runspec.RunSpec` must agree
*exactly* — the simulator is deterministic, so any drift is a bug.  Runs
of *different* code versions, however, legitimately differ in artifact
fields (wall times, host info), and a reviewer often wants "counts exact,
derived floats within 1e-9".  :func:`diff_payloads` supports both: exact
by default, loosened per-path via :class:`ToleranceRule` glob patterns.

Severity is ternary, mapping onto process exit codes:

====================  ===========================================  =====
Outcome               Meaning                                      exit
====================  ===========================================  =====
``identical``         every leaf equal                             0
``within_tolerance``  differences exist, all covered by a rule     1
``regression``        at least one difference outside every rule   2
====================  ===========================================  =====
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Optional

#: Sentinel for "key absent on this side" (distinct from an explicit null).
_MISSING = object()


@dataclass(frozen=True)
class ToleranceRule:
    """Allow numeric drift on paths matching ``pattern`` (fnmatch glob).

    A numeric difference ``|a - b|`` is acceptable when it is within
    ``abs_tol`` **or** within ``rel_tol * max(|a|, |b|)``.  Non-numeric
    differences never match a tolerance rule.
    """

    pattern: str
    rel_tol: float = 0.0
    abs_tol: float = 0.0

    def covers(self, path: str) -> bool:
        return fnmatchcase(path, self.pattern)

    def allows(self, a, b) -> bool:
        if isinstance(a, bool) or isinstance(b, bool):
            return False  # bools are ints to Python; treat as categorical
        if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
            return False
        delta = abs(a - b)
        return delta <= self.abs_tol or delta <= self.rel_tol * max(abs(a), abs(b))


@dataclass(frozen=True)
class Difference:
    """One diverging leaf path."""

    path: str
    a: object
    b: object
    status: str  # "within_tolerance" | "regression"

    def __str__(self) -> str:
        a = "<missing>" if self.a is _MISSING else repr(self.a)
        b = "<missing>" if self.b is _MISSING else repr(self.b)
        return f"{self.path}: {a} != {b} [{self.status}]"


@dataclass
class DiffResult:
    """Outcome of comparing two payloads."""

    differences: list[Difference] = field(default_factory=list)
    leaves_compared: int = 0

    @property
    def regressions(self) -> list[Difference]:
        return [d for d in self.differences if d.status == "regression"]

    @property
    def tolerated(self) -> list[Difference]:
        return [d for d in self.differences if d.status == "within_tolerance"]

    @property
    def status(self) -> str:
        if not self.differences:
            return "identical"
        if self.regressions:
            return "regression"
        return "within_tolerance"

    @property
    def exit_code(self) -> int:
        return {"identical": 0, "within_tolerance": 1, "regression": 2}[
            self.status
        ]

    def report(self) -> str:
        lines = [
            f"{self.status}: {self.leaves_compared} leaves compared, "
            f"{len(self.tolerated)} within tolerance, "
            f"{len(self.regressions)} regressions"
        ]
        lines.extend(f"  {d}" for d in self.differences)
        return "\n".join(lines)


def _flatten(value, path: str, out: dict) -> None:
    """Leaf paths: dict keys joined with ``.``, list items by index."""
    if isinstance(value, dict):
        if not value:
            out[path] = value  # empty containers are leaves
            return
        for key in value:
            _flatten(value[key], f"{path}.{key}" if path else str(key), out)
    elif isinstance(value, list):
        if not value:
            out[path] = value
            return
        for index, item in enumerate(value):
            _flatten(item, f"{path}.{index}" if path else str(index), out)
    else:
        out[path] = value


def diff_payloads(
    a, b, rules: Optional[list[ToleranceRule]] = None
) -> DiffResult:
    """Compare two JSON-able payloads leaf by leaf."""
    rules = rules or []
    flat_a: dict = {}
    flat_b: dict = {}
    _flatten(a, "", flat_a)
    _flatten(b, "", flat_b)

    result = DiffResult()
    for path in sorted(flat_a.keys() | flat_b.keys()):
        result.leaves_compared += 1
        va = flat_a.get(path, _MISSING)
        vb = flat_b.get(path, _MISSING)
        if va is _MISSING or vb is _MISSING:
            # Structural divergence is never tolerable: a missing path
            # means the two runs disagree about what was even measured.
            result.differences.append(Difference(path, va, vb, "regression"))
            continue
        # ``True == 1`` in Python; keep bools categorical so a flag
        # flipping type is reported rather than silently equal.
        if va == vb and isinstance(va, bool) == isinstance(vb, bool):
            continue
        status = "regression"
        for rule in rules:
            if rule.covers(path) and rule.allows(va, vb):
                status = "within_tolerance"
                break
        result.differences.append(Difference(path, va, vb, status))
    return result


def diff_files(
    path_a, path_b, rules: Optional[list[ToleranceRule]] = None
) -> DiffResult:
    """Compare two JSON files (result, metrics, or profile payloads)."""
    with open(path_a, "r", encoding="utf-8") as fa:
        payload_a = json.load(fa)
    with open(path_b, "r", encoding="utf-8") as fb:
        payload_b = json.load(fb)
    return diff_payloads(payload_a, payload_b, rules)
