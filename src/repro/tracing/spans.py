"""Deterministic trace ids and span lifecycles.

A *trace* covers one client submission end to end; a *span* is one
closed interval of the request path inside it (a resolution tier, a
backend execution, a warm-start restore).  The design splits every span
along the ``bench_report`` convention:

* **deterministic fields** — trace id, span id, name, job, parent,
  simulated cycles, detail — are pure functions of the request stream
  and safe to gate CI on;
* **wall-clock fields** — start/duration in microseconds — are
  artifact-only, captured here (and nowhere else on the request path)
  so RPR001/RPR013 keep the simulation packages clock-free.

Trace ids are minted by the *client*: ``sha256(digest:sequence)`` over
the canonical request payload and a per-client submission counter, so
two identical submissions from one client get distinct but reproducible
ids, and a re-run of the same client program mints the same sequence.
Span ids are allocated sequentially in open order within one
``(trace_id, job)`` — concurrent jobs each get their own
:class:`JobTrace`, so id allocation never races across jobs and the
resulting id sequence is deterministic per job even when wall-clock
interleavings are not.
"""

from __future__ import annotations

import hashlib
import threading
import time
from typing import Callable, Optional

from repro.serialize import canonical_json
from repro.telemetry.events import SpanEvent

#: Hex length of a trace id (matches ``repro.serialize.HASH_LEN`` so
#: trace ids read like the spec hashes they travel with).
TRACE_ID_LEN = 16

#: Request-frame keys that feed the trace-id digest.  Only payload
#: content — never frame ids or wall time — so the digest is a pure
#: function of *what* was asked.
_DIGEST_KEYS = ("spec", "specs", "workloads", "scenarios", "options", "monitors")


def mint_trace_id(seed: str, sequence: int) -> str:
    """Deterministic trace id: ``sha256(seed:sequence)`` hex prefix."""
    raw = f"{seed}:{sequence}".encode("utf-8")
    return hashlib.sha256(raw).hexdigest()[:TRACE_ID_LEN]


def request_digest(frame: dict) -> str:
    """Content digest of a request frame's payload subset.

    Drops transport-level keys (``id``, ``v``, ``stream``...) so the
    same logical request always digests the same, whatever connection
    it arrives on.
    """
    payload = {k: frame[k] for k in _DIGEST_KEYS if k in frame}
    raw = canonical_json(payload).encode("utf-8")
    return hashlib.sha256(raw).hexdigest()[:TRACE_ID_LEN]


def monotonic_us() -> int:
    """Monotonic wall clock in microseconds (artifact-only; the serving
    layer calls this instead of touching ``time`` directly)."""
    return time.perf_counter_ns() // 1000


class Span:
    """One open span; closes via context-manager exit or :meth:`close`.

    Deterministic payload fields are attached with :meth:`set`; the
    wall interval is captured automatically from the owning trace's
    clock.  Emission happens exactly once, at close.
    """

    __slots__ = ("_trace", "name", "span_id", "parent", "cycles", "detail",
                 "_start_ns", "_closed")

    def __init__(self, trace: "JobTrace", name: str, span_id: int,
                 parent: Optional[int]):
        self._trace = trace
        self.name = name
        self.span_id = span_id
        self.parent = parent
        self.cycles = 0
        self.detail = ""
        self._start_ns = trace.clock()
        self._closed = False

    def set(self, cycles: Optional[int] = None,
            detail: Optional[str] = None) -> "Span":
        """Attach deterministic payload fields; returns self for chaining."""
        if cycles is not None:
            self.cycles = cycles
        if detail is not None:
            self.detail = detail
        return self

    def close(self) -> SpanEvent:
        """Close the span and emit its :class:`SpanEvent` (idempotent on
        the emission: a second close raises)."""
        if self._closed:
            raise RuntimeError(f"span {self.name!r} already closed")
        self._closed = True
        end_ns = self._trace.clock()
        event = SpanEvent(
            time=self.span_id,
            trace_id=self._trace.trace_id,
            name=self.name,
            job=self._trace.job,
            parent=self.parent,
            cycles=self.cycles,
            detail=self.detail,
            wall_start_us=self._start_ns // 1000,
            wall_dur_us=max(0, (end_ns - self._start_ns) // 1000),
        )
        self._trace.emit(event)
        return event

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class JobTrace:
    """Span factory for one ``(trace_id, job)`` pair.

    Hands out sequential span ids under a lock (spans may close on the
    event loop, a worker thread, or the backend pool) and forwards each
    closed span to ``emit``.  ``clock`` is injectable so tests can pin
    wall fields to known values; it must return nanoseconds.
    """

    __slots__ = ("trace_id", "job", "emit", "clock", "_lock", "_next_id")

    def __init__(self, trace_id: str, job: str,
                 emit: Callable[[SpanEvent], None],
                 clock: Callable[[], int] = time.perf_counter_ns):
        self.trace_id = trace_id
        self.job = job
        self.emit = emit
        self.clock = clock
        self._lock = threading.Lock()
        self._next_id = 0

    def span(self, name: str, parent: Optional[int] = None) -> Span:
        """Open a span; its id is allocated now, in program order."""
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return Span(self, name, span_id, parent)
