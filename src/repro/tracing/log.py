"""Structured JSONL logging with trace context.

One line per record, canonical key order, so logs diff cleanly and
grep/jq pipelines stay trivial.  The ``ts`` field is wall-clock
microseconds and therefore artifact-only — anything that compares log
files byte-for-byte must drop it (same rule as span wall fields).

The serving layer creates one :class:`StructuredLog` per server and
passes it down; modules never construct their own, which keeps the
"who logs where" decision at the composition root.
"""

from __future__ import annotations

import json
import threading
from typing import Callable, Optional, TextIO

from repro.tracing.spans import monotonic_us

#: Record severities, in increasing order.
LEVELS = ("info", "warn", "error")


class StructuredLog:
    """Thread-safe JSONL logger carrying optional trace/job context.

    ``stream`` takes precedence over ``path``; with neither, records
    are kept in ``self.records`` only (handy for tests and for the
    server's in-memory tail).  ``clock`` is injectable for
    deterministic tests and must return microseconds.
    """

    def __init__(self, path: Optional[str] = None,
                 stream: Optional[TextIO] = None,
                 clock: Callable[[], int] = monotonic_us,
                 keep: int = 256):
        self._lock = threading.Lock()
        self._clock = clock
        self._stream = stream
        self._owns_stream = False
        if stream is None and path is not None:
            self._stream = open(path, "a", encoding="utf-8")
            self._owns_stream = True
        self._keep = keep
        self.records: list[dict] = []

    def _write(self, level: str, msg: str, trace: Optional[str],
               job: Optional[str], fields: dict) -> dict:
        record = {"ts": self._clock(), "level": level, "msg": msg}
        if trace is not None:
            record["trace"] = trace
        if job is not None:
            record["job"] = job
        for key in sorted(fields):
            record[key] = fields[key]
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with self._lock:
            self.records.append(record)
            if len(self.records) > self._keep:
                del self.records[: len(self.records) - self._keep]
            if self._stream is not None:
                self._stream.write(line + "\n")
                self._stream.flush()
        return record

    def info(self, msg: str, trace: Optional[str] = None,
             job: Optional[str] = None, **fields) -> dict:
        return self._write("info", msg, trace, job, fields)

    def warn(self, msg: str, trace: Optional[str] = None,
             job: Optional[str] = None, **fields) -> dict:
        return self._write("warn", msg, trace, job, fields)

    def error(self, msg: str, trace: Optional[str] = None,
              job: Optional[str] = None, **fields) -> dict:
        return self._write("error", msg, trace, job, fields)

    def close(self) -> None:
        with self._lock:
            if self._owns_stream and self._stream is not None:
                self._stream.close()
                self._stream = None

    def __enter__(self) -> "StructuredLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
