"""Causal tracing for the serving path.

This package is the *only* part of the request path that reads the wall
clock: :mod:`repro.tracing.spans` mints deterministic trace ids and
span ids, measures wall durations as artifact-only fields, and emits
:class:`~repro.telemetry.events.SpanEvent` records through the PR 3
sink interface; :mod:`repro.tracing.log` provides structured JSONL
logging that carries the same trace context.

It deliberately lives *outside* the analyzer's ``pure_packages`` scope
(RPR001/RPR013): simulation code must never import it.  The serving
layer (``repro.service``) is its sole consumer.
"""

from repro.tracing.spans import (
    TRACE_ID_LEN,
    JobTrace,
    Span,
    mint_trace_id,
    monotonic_us,
    request_digest,
)
from repro.tracing.log import StructuredLog

__all__ = [
    "TRACE_ID_LEN",
    "JobTrace",
    "Span",
    "StructuredLog",
    "mint_trace_id",
    "monotonic_us",
    "request_digest",
]
