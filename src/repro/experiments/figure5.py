"""Figure 5: feasibility of bank-partitioning from a capacity standpoint.

For each chip density, allocate each SPEC benchmark's full footprint with a
modified allocator that prefers bank 0 and falls back to other banks when
bank 0 fills (exactly the kernel modification described in Section 3.3),
then report the fraction of the footprint that landed in bank 0.

Paper's observation: at 8 Gb, on average 68% of the footprint fits in a
single bank, rising with density.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.system_configs import default_system_config
from repro.dram.address import AddressMapping
from repro.experiments.report import format_table
from repro.os.page import PhysicalMemory
from repro.os.partition import PartitioningAllocator, PartitionPolicy
from repro.os.task import Task
from repro.workloads.nas import NPB_UA
from repro.workloads.spec2006 import SPEC_BENCHMARKS
from repro.workloads.stream import STREAM

DENSITIES = (8, 16, 24, 32)


@dataclass
class Figure5Row:
    density_gbit: int
    benchmark: str
    footprint_pages: int
    fraction_on_bank0: float


def _all_benchmarks():
    yield from SPEC_BENCHMARKS.values()
    yield STREAM
    yield NPB_UA


def run(capacity_scale: int = 1024) -> list[Figure5Row]:
    rows = []
    for density in DENSITIES:
        config = default_system_config(
            density_gbit=density, capacity_scale=capacity_scale
        )
        rows_per_bank = max(
            1, config.bank_capacity_bytes // config.organization.row_size_bytes
        )
        for spec in _all_benchmarks():
            mapping = AddressMapping(config.organization, rows_per_bank)
            memory = PhysicalMemory(mapping)
            allocator = PartitioningAllocator(memory, PartitionPolicy.SOFT)
            task = Task(
                spec.name, workload=None, possible_banks=frozenset({0}), task_id=0
            )
            pages = max(
                1, config.scale_footprint(spec.footprint_bytes) // mapping.page_bytes
            )
            allocated = allocator.alloc_footprint(task, pages)
            on_bank0 = task.pages_per_bank.get(0, 0)
            rows.append(
                Figure5Row(
                    density_gbit=density,
                    benchmark=spec.name,
                    footprint_pages=pages,
                    fraction_on_bank0=on_bank0 / allocated if allocated else 0.0,
                )
            )
    return rows


def averages(rows: list[Figure5Row]) -> dict[int, float]:
    """Mean fraction-on-bank-0 per density (the paper's headline numbers)."""
    result: dict[int, float] = {}
    for density in DENSITIES:
        values = [r.fraction_on_bank0 for r in rows if r.density_gbit == density]
        result[density] = sum(values) / len(values) if values else 0.0
    return result


def format_results(rows: list[Figure5Row]) -> str:
    avg = averages(rows)
    table = format_table(
        ["density", "benchmark", "pages", "% on bank 0"],
        [
            [f"{r.density_gbit}Gb", r.benchmark, r.footprint_pages,
             f"{r.fraction_on_bank0:.1%}"]
            for r in rows
        ],
        title="Figure 5: fraction of footprint allocable on a single bank",
    )
    summary = "\n".join(
        f"  average @ {d}Gb: {avg[d]:.1%}" for d in DENSITIES
    )
    return f"{table}\n{summary}"
