"""Figure 4: refresh cycle time vs bank-level parallelism.

IPC of a *refresh-free* system whose tasks are confined to 8/4/2/1 banks
per rank, normalized to the all-bank-refresh baseline where every task
spans all 8 banks.  Shows that once the entire tRFC overhead is removed,
confining tasks to >= 4 banks still wins for high-density chips (the BLP
loss is smaller than the refresh gain), while at 8 Gb it loses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import speedup
from repro.core.system import Scenario
from repro.experiments.report import format_percent, format_table
from repro.experiments.runner import SweepRunner
from repro.os.partition import PartitionPolicy

DENSITIES = (8, 16, 24, 32)
BANKS_PER_TASK = (8, 4, 2, 1)

#: No refresh + soft partitioning, baseline CFS (isolates the BLP effect).
_CONFINED = Scenario(
    "confined_no_refresh", "no_refresh", partition=PartitionPolicy.SOFT
)


@dataclass
class Figure4Row:
    density_gbit: int
    banks_per_task: int
    improvement: float  # vs all-bank refresh with all 8 banks


def sweep_specs(runner: SweepRunner) -> list:
    """Every RunSpec this figure needs, for batch submission."""
    specs = []
    for density in DENSITIES:
        overrides = {"density_gbit": density}
        for workload in runner.profile.workloads:
            specs.append(runner.spec(workload, "all_bank", **overrides))
            specs.append(runner.spec(workload, "no_refresh", **overrides))
            for banks in BANKS_PER_TASK:
                if banks != 8:
                    specs.append(
                        runner.spec(
                            workload, _CONFINED, banks_per_task=banks, **overrides
                        )
                    )
    return specs


def run(runner: SweepRunner | None = None) -> list[Figure4Row]:
    runner = runner or SweepRunner()
    runner.prefetch(sweep_specs(runner))
    rows = []
    for density in DENSITIES:
        overrides = {"density_gbit": density}
        baseline = runner.average_hmean_ipc("all_bank", **overrides)
        for banks in BANKS_PER_TASK:
            if banks == 8:
                value = runner.average_hmean_ipc("no_refresh", **overrides)
            else:
                value = runner.average_hmean_ipc(
                    _CONFINED, banks_per_task=banks, **overrides
                )
            rows.append(
                Figure4Row(
                    density_gbit=density,
                    banks_per_task=banks,
                    improvement=speedup(value, baseline),
                )
            )
    return rows


def format_results(rows: list[Figure4Row]) -> str:
    return format_table(
        ["density", "banks/task", "IPC vs all-bank(8 banks)"],
        [
            [f"{r.density_gbit}Gb", r.banks_per_task, format_percent(r.improvement)]
            for r in rows
        ],
        title="Figure 4: no-refresh IPC with confined banks vs all-bank baseline",
    )
