"""Figure 9: the co-design in operation (illustrative figure).

The paper's Figure 9 shows tasks rotating across cores so the bank being
refreshed in each 4 ms stretch belongs to nobody scheduled.  This
experiment reproduces it as data: a traced run of the co-design versus
the refresh-oblivious baseline on the same hardware, reporting the
fraction of conflict-free quanta and the rendered timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.core.simulator import build_system
from repro.core.trace import ScheduleTracer
from repro.telemetry import ChromeTraceSink


@dataclass
class Figure9Result:
    scenario: str
    conflict_free_fraction: float
    quanta: int
    timeline: str
    trace_path: str | None = None


def run(
    workload: str = "WL-1",
    refresh_scale: int = 512,
    trace_dir: str | None = None,
) -> list[Figure9Result]:
    """Trace both scenarios; with *trace_dir*, also export each run as a
    Chrome trace (``figure9.<scenario>.trace.json``, Perfetto-loadable)."""
    results = []
    for scenario in ("codesign", "same_bank_hw_only"):
        system = build_system(workload, scenario, refresh_scale=refresh_scale)
        tracer = ScheduleTracer(system)
        chrome = None
        if trace_dir is not None:
            chrome = system.telemetry.subscribe(ChromeTraceSink())
        system.run(num_windows=1.0, warmup_windows=0.0)
        trace_path = None
        if chrome is not None:
            out = Path(trace_dir) / f"figure9.{scenario}.trace.json"
            out.parent.mkdir(parents=True, exist_ok=True)
            chrome.write(out)
            trace_path = str(out)
        results.append(
            Figure9Result(
                scenario=scenario,
                conflict_free_fraction=tracer.conflict_free_fraction(),
                quanta=len(tracer.quanta()),
                timeline=tracer.timeline(max_quanta=16),
                trace_path=trace_path,
            )
        )
    return results


def format_results(results: list[Figure9Result]) -> str:
    parts = ["Figure 9: refresh-aware schedule rotation (16-quantum window)"]
    for r in results:
        parts.append(
            f"\n--- {r.scenario}: {r.conflict_free_fraction:.0%} of "
            f"{r.quanta} quanta conflict-free ---"
        )
        parts.append(r.timeline)
        if r.trace_path is not None:
            parts.append(f"(chrome trace: {r.trace_path})")
    return "\n".join(parts)
