"""Figure 12: DDR4 Fine Granularity Refresh comparison.

All-bank refresh in DDR4 1x/2x/4x FGR modes versus the co-design,
normalized to the 1x mode.  2x/4x *hurt*: tREFI halves/quarters but tRFC
shrinks only 1.35x/1.63x, so more total cycles are spent refresh-blocked
(Section 6.3); the co-design masks the overhead entirely.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.dram_configs import DDR4_1600, FgrMode
from repro.core.metrics import speedup
from repro.experiments.report import format_percent, format_table
from repro.experiments.runner import SweepRunner

MODES = (FgrMode.X1, FgrMode.X2, FgrMode.X4)


@dataclass
class Figure12Row:
    workload: str
    scheme: str  # ddr4_1x / ddr4_2x / ddr4_4x / codesign
    improvement: float  # vs DDR4-1x all-bank


def sweep_specs(runner: SweepRunner, density_gbit: int = 32) -> list:
    """Every RunSpec this figure needs, for batch submission."""
    specs = []
    for workload in runner.profile.workloads:
        for mode in MODES:
            specs.append(
                runner.spec(
                    workload,
                    "all_bank",
                    density_gbit=density_gbit,
                    dram_timing=DDR4_1600,
                    fgr_mode=mode,
                )
            )
        specs.append(
            runner.spec(
                workload,
                "codesign",
                density_gbit=density_gbit,
                dram_timing=DDR4_1600,
                fgr_mode=FgrMode.X1,
            )
        )
    return specs


def run(runner: SweepRunner | None = None, density_gbit: int = 32) -> list[Figure12Row]:
    runner = runner or SweepRunner()
    runner.prefetch(sweep_specs(runner, density_gbit))
    rows = []
    for workload in runner.profile.workloads:
        base = runner.run(
            workload,
            "all_bank",
            density_gbit=density_gbit,
            dram_timing=DDR4_1600,
            fgr_mode=FgrMode.X1,
        ).hmean_ipc
        for mode in MODES[1:]:
            value = runner.run(
                workload,
                "all_bank",
                density_gbit=density_gbit,
                dram_timing=DDR4_1600,
                fgr_mode=mode,
            ).hmean_ipc
            rows.append(
                Figure12Row(workload, f"ddr4_{mode.value}x", speedup(value, base))
            )
        codesign = runner.run(
            workload,
            "codesign",
            density_gbit=density_gbit,
            dram_timing=DDR4_1600,
            fgr_mode=FgrMode.X1,
        ).hmean_ipc
        rows.append(Figure12Row(workload, "codesign", speedup(codesign, base)))
    return rows


def format_results(rows: list[Figure12Row]) -> str:
    return format_table(
        ["workload", "scheme", "IPC vs DDR4-1x"],
        [[r.workload, r.scheme, format_percent(r.improvement)] for r in rows],
        title="Figure 12: DDR4 FGR modes vs co-design (normalized to 1x)",
    )
