"""Figure 11: average memory access latency per workload (memory cycles).

Same sweep as Figure 10 (the runner memoizes, so shared runs are free);
reports the controller's average read latency for all-bank, per-bank and
the co-design.  Lower is better; the co-design should cut latency because
no scheduled task's demand requests queue behind a tRFC.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.report import format_table
from repro.experiments.runner import SweepRunner

SCHEMES = ("all_bank", "per_bank", "codesign")


@dataclass
class Figure11Row:
    workload: str
    scheme: str
    avg_latency_mem_cycles: float


def sweep_specs(runner: SweepRunner, density_gbit: int = 32) -> list:
    """Every RunSpec this figure needs, for batch submission."""
    return [
        runner.spec(workload, scheme, density_gbit=density_gbit)
        for workload in runner.profile.workloads
        for scheme in SCHEMES
    ]


def run(runner: SweepRunner | None = None, density_gbit: int = 32) -> list[Figure11Row]:
    runner = runner or SweepRunner()
    runner.prefetch(sweep_specs(runner, density_gbit))
    rows = []
    for workload in runner.profile.workloads:
        for scheme in SCHEMES:
            result = runner.run(workload, scheme, density_gbit=density_gbit)
            rows.append(
                Figure11Row(
                    workload=workload,
                    scheme=scheme,
                    avg_latency_mem_cycles=result.avg_read_latency_mem_cycles,
                )
            )
    return rows


def format_results(rows: list[Figure11Row]) -> str:
    return format_table(
        ["workload", "scheme", "avg latency (mem cycles)"],
        [[r.workload, r.scheme, f"{r.avg_latency_mem_cycles:.1f}"] for r in rows],
        title="Figure 11: average memory access latency",
    )
