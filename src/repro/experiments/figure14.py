"""Figure 14: comparison with previous hardware-only proposals (32 Gb).

Out-of-order per-bank refresh (Chang et al., HPCA 2014) and Adaptive
Refresh (Mukundan et al., ISCA 2013) versus per-bank refresh and the
co-design, all normalized to all-bank refresh.

Paper averages: OOO per-bank +9.5% over all-bank (marginal over plain
per-bank); AR +1.9%; co-design beats OOO per-bank by 6.1% and AR by 14.6%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import speedup
from repro.experiments.report import format_percent, format_table
from repro.experiments.runner import SweepRunner

SCHEMES = ("per_bank", "ooo_per_bank", "adaptive", "codesign")


@dataclass
class Figure14Row:
    workload: str
    scheme: str
    improvement: float  # vs all-bank


def sweep_specs(runner: SweepRunner, density_gbit: int = 32) -> list:
    """Every RunSpec this figure needs, for batch submission."""
    return [
        runner.spec(workload, scheme, density_gbit=density_gbit)
        for workload in runner.profile.workloads
        for scheme in ("all_bank", *SCHEMES)
    ]


def run(runner: SweepRunner | None = None, density_gbit: int = 32) -> list[Figure14Row]:
    runner = runner or SweepRunner()
    runner.prefetch(sweep_specs(runner, density_gbit))
    rows = []
    for workload in runner.profile.workloads:
        base = runner.run(workload, "all_bank", density_gbit=density_gbit).hmean_ipc
        for scheme in SCHEMES:
            value = runner.run(workload, scheme, density_gbit=density_gbit).hmean_ipc
            rows.append(Figure14Row(workload, scheme, speedup(value, base)))
    return rows


def averages(rows: list[Figure14Row]) -> dict[str, float]:
    result = {}
    for scheme in SCHEMES:
        values = [r.improvement for r in rows if r.scheme == scheme]
        if values:
            result[scheme] = sum(values) / len(values)
    return result


def format_results(rows: list[Figure14Row]) -> str:
    table = format_table(
        ["workload", "scheme", "IPC vs all-bank"],
        [[r.workload, r.scheme, format_percent(r.improvement)] for r in rows],
        title="Figure 14: comparison with prior proposals (32Gb)",
    )
    avg = averages(rows)
    summary = "\n".join(
        f"  average: {s} {format_percent(avg[s])}" for s in SCHEMES
    )
    return f"{table}\n{summary}"
