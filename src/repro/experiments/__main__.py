"""Command-line entry point for the experiment harness.

Usage::

    python -m repro.experiments figure10          # one figure
    python -m repro.experiments all               # everything
    python -m repro.experiments figure3 --profile full
    python -m repro.experiments all --jobs 8      # parallel sweep
    python -m repro.experiments figure13 --no-cache

Each experiment prints the same table its pytest benchmark saves under
``benchmarks/results/``.  Sweep points fan out over ``--jobs`` worker
processes (default: ``REPRO_JOBS`` or the CPU count) and results persist
in a content-addressed disk cache (``--cache-dir``, ``REPRO_CACHE_DIR``
or ``~/.cache/repro``) so warm re-runs execute zero simulations.
"""

from __future__ import annotations

import argparse
import sys
import time

# Direct submodule imports: the deprecated attribute shim in
# repro.experiments.__init__ only intercepts `from repro.experiments
# import figureN` style access.
import repro.experiments.ablations as ablations
import repro.experiments.figure3 as figure3
import repro.experiments.figure4 as figure4
import repro.experiments.figure5 as figure5
import repro.experiments.figure9 as figure9
import repro.experiments.figure10 as figure10
import repro.experiments.figure11 as figure11
import repro.experiments.figure12 as figure12
import repro.experiments.figure13 as figure13
import repro.experiments.figure14 as figure14
import repro.experiments.figure15 as figure15
from repro.experiments.report import format_run_stats
from repro.experiments.runner import FULL_PROFILE, QUICK_PROFILE, SweepRunner


def _simple(module):
    def run(runner):
        return module.format_results(module.run(runner))

    return run


def _figure5(runner):
    return figure5.format_results(figure5.run())


def _ablations(runner):
    rows = []
    rows += ablations.component_study(runner)
    rows += ablations.banks_sweep(runner)
    rows += ablations.eta_sweep(runner)
    return ablations.format_results(rows)


def _figure9(runner, trace_dir=None):
    return figure9.format_results(figure9.run(trace_dir=trace_dir))


EXPERIMENTS = {
    "figure3": _simple(figure3),
    "figure4": _simple(figure4),
    "figure5": _figure5,
    "figure9": _figure9,
    "figure10": _simple(figure10),
    "figure11": _simple(figure11),
    "figure12": _simple(figure12),
    "figure13": _simple(figure13),
    "figure14": _simple(figure14),
    "figure15": _simple(figure15),
    "ablations": _ablations,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's evaluation figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which figure to regenerate",
    )
    parser.add_argument(
        "--profile",
        choices=["quick", "full"],
        default="quick",
        help="simulation effort per data point (default: quick)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for sweep points "
             "(default: REPRO_JOBS or the CPU count)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="persistent result-cache directory "
             "(default: REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent result cache",
    )
    parser.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="write Chrome trace-event JSON files for traced experiments "
             "(currently figure9) into DIR",
    )
    args = parser.parse_args(argv)

    profile = FULL_PROFILE if args.profile == "full" else QUICK_PROFILE
    runner = SweepRunner(
        profile,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
    )
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        start = time.time()
        if name == "figure9":
            print(_figure9(runner, trace_dir=args.trace_dir))
        else:
            print(EXPERIMENTS[name](runner))
        print(f"[{name}: {time.time() - start:.1f}s, "
              f"{format_run_stats(runner)}]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
