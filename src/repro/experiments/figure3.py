"""Figure 3: performance degradation due to refresh.

For DRAM densities 8/16/24/32 Gb and retention windows 64 ms (< 85C) and
32 ms (> 85C), measures the average IPC degradation of all-bank and
per-bank refresh relative to ideal refresh-free DRAM.

Paper's reported averages (Section 3.1): at 64 ms, all-bank degrades
5.4% -> 17.2% and per-bank 0.24% -> 9.8% as density grows 8 -> 32 Gb; at
32 ms, up to 34.8% (all-bank) and 20.3% (per-bank) for 32 Gb.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import degradation
from repro.experiments.report import format_percent, format_table
from repro.experiments.runner import SweepRunner
from repro.units import ms

DENSITIES = (8, 16, 24, 32)
RETENTIONS_MS = (64, 32)
SCHEMES = ("all_bank", "per_bank")
#: Table 2 mixes with at least one M/H benchmark; the paper's averages are
#: dominated by these (the all-L mixes barely touch memory).
MEMORY_INTENSIVE = ("WL-1", "WL-5", "WL-6", "WL-7", "WL-8", "WL-9", "WL-10")


@dataclass
class Figure3Row:
    density_gbit: int
    trefw_ms: int
    scheme: str
    degradation: float  # vs no-refresh, averaged over all workloads
    degradation_intensive: float  # averaged over M/H workloads only


def sweep_specs(runner: SweepRunner) -> list:
    """Every RunSpec this figure needs, for batch submission."""
    return [
        runner.spec(
            workload, scheme, density_gbit=density, trefw_ps=ms(trefw_ms_value)
        )
        for trefw_ms_value in RETENTIONS_MS
        for density in DENSITIES
        for scheme in ("no_refresh", *SCHEMES)
        for workload in runner.profile.workloads
    ]


def run(runner: SweepRunner | None = None) -> list[Figure3Row]:
    runner = runner or SweepRunner()
    runner.prefetch(sweep_specs(runner))
    intensive = [w for w in runner.profile.workloads if w in MEMORY_INTENSIVE]
    rows = []
    for trefw_ms_value in RETENTIONS_MS:
        for density in DENSITIES:
            overrides = {
                "density_gbit": density,
                "trefw_ps": ms(trefw_ms_value),
            }
            ideal = runner.average_hmean_ipc("no_refresh", **overrides)
            ideal_hot = runner.average_hmean_ipc(
                "no_refresh", workloads=intensive, **overrides
            )
            for scheme in SCHEMES:
                value = runner.average_hmean_ipc(scheme, **overrides)
                value_hot = runner.average_hmean_ipc(
                    scheme, workloads=intensive, **overrides
                )
                rows.append(
                    Figure3Row(
                        density_gbit=density,
                        trefw_ms=trefw_ms_value,
                        scheme=scheme,
                        degradation=degradation(value, ideal),
                        degradation_intensive=degradation(value_hot, ideal_hot),
                    )
                )
    return rows


def format_results(rows: list[Figure3Row]) -> str:
    return format_table(
        ["density", "tREFW", "scheme", "degradation (all)", "degradation (M/H)"],
        [
            [f"{r.density_gbit}Gb", f"{r.trefw_ms}ms", r.scheme,
             format_percent(r.degradation),
             format_percent(r.degradation_intensive)]
            for r in rows
        ],
        title="Figure 3: performance degradation due to refresh (vs no-refresh)",
    )
