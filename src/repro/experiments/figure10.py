"""Figure 10: co-design IPC improvements (the headline result).

Per Table 2 workload and for 16/24/32 Gb chips, the IPC improvement of
per-bank refresh and of the full co-design, normalized to all-bank refresh.

Paper averages: co-design +16.2%/+12.1%/+9.03% over all-bank and
+6.3%/+5.4%/+2.5% over per-bank at 32/24/16 Gb.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import speedup
from repro.experiments.report import format_percent, format_table
from repro.experiments.runner import SweepRunner

DENSITIES = (16, 24, 32)
SCHEMES = ("per_bank", "codesign")


@dataclass
class Figure10Row:
    density_gbit: int
    workload: str
    scheme: str
    improvement: float  # vs all-bank refresh


def sweep_specs(runner: SweepRunner) -> list:
    """Every RunSpec this figure needs, for batch submission."""
    return [
        runner.spec(workload, scheme, density_gbit=density)
        for density in DENSITIES
        for workload in runner.profile.workloads
        for scheme in ("all_bank", *SCHEMES)
    ]


def run(runner: SweepRunner | None = None) -> list[Figure10Row]:
    runner = runner or SweepRunner()
    runner.prefetch(sweep_specs(runner))
    rows = []
    for density in DENSITIES:
        overrides = {"density_gbit": density}
        for workload in runner.profile.workloads:
            base = runner.run(workload, "all_bank", **overrides).hmean_ipc
            for scheme in SCHEMES:
                value = runner.run(workload, scheme, **overrides).hmean_ipc
                rows.append(
                    Figure10Row(
                        density_gbit=density,
                        workload=workload,
                        scheme=scheme,
                        improvement=speedup(value, base),
                    )
                )
    return rows


def averages(rows: list[Figure10Row]) -> dict[tuple[int, str], float]:
    """Mean improvement per (density, scheme)."""
    result: dict[tuple[int, str], float] = {}
    for density in DENSITIES:
        for scheme in SCHEMES:
            values = [
                r.improvement
                for r in rows
                if r.density_gbit == density and r.scheme == scheme
            ]
            if values:
                result[(density, scheme)] = sum(values) / len(values)
    return result


def format_results(rows: list[Figure10Row]) -> str:
    table = format_table(
        ["density", "workload", "scheme", "IPC vs all-bank"],
        [
            [f"{r.density_gbit}Gb", r.workload, r.scheme,
             format_percent(r.improvement)]
            for r in rows
        ],
        title="Figure 10: IPC improvement normalized to all-bank refresh",
    )
    avg = averages(rows)
    summary = "\n".join(
        f"  average @ {d}Gb: {s} {format_percent(avg[(d, s)])}"
        for d in DENSITIES
        for s in SCHEMES
    )
    return f"{table}\n{summary}"
