"""Ablation studies for the design choices DESIGN.md Section 5 calls out.

These are not paper figures; they isolate the contribution of each
co-design ingredient:

* ``eta_sweep``         — fairness threshold vs refresh avoidance.
* ``banks_sweep``       — banks-per-task (the paper's footnote 11: 6 is the
                          dual-core 1:4 sweet spot; 4 and 2 help less).
* ``component_study``   — hardware schedule alone, partitioning alone,
                          soft vs hard partitioning, best-effort mode,
                          versus the full co-design.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import speedup
from repro.experiments.report import format_percent, format_table
from repro.experiments.runner import SweepRunner


@dataclass
class AblationRow:
    study: str
    variant: str
    improvement: float  # vs all-bank refresh


def eta_sweep(
    runner: SweepRunner | None = None,
    workload: str = "WL-6",
    etas: tuple[int, ...] = (1, 2, 3, 8),
) -> list[AblationRow]:
    """Vary Algorithm 3's eta_thresh; 1 disables refresh awareness almost
    entirely, large values always wait for a clean task."""
    from repro.config.system_configs import OsConfig

    runner = runner or SweepRunner()
    runner.prefetch(
        [runner.spec(workload, "all_bank")]
        + [
            runner.spec(workload, "codesign", os=OsConfig(eta_thresh=eta))
            for eta in etas
        ]
    )
    base = runner.run(workload, "all_bank").hmean_ipc
    rows = []
    for eta in etas:
        value = runner.run(
            workload, "codesign", os=OsConfig(eta_thresh=eta)
        ).hmean_ipc
        rows.append(AblationRow("eta_thresh", f"eta={eta}", speedup(value, base)))
    return rows


def banks_sweep(
    runner: SweepRunner | None = None,
    workload: str = "WL-6",
    banks: tuple[int, ...] = (2, 4, 6),
) -> list[AblationRow]:
    """Banks-per-task sweep (paper footnote 11)."""
    runner = runner or SweepRunner()
    runner.prefetch(
        [runner.spec(workload, "all_bank")]
        + [runner.spec(workload, "codesign", banks_per_task=b) for b in banks]
    )
    base = runner.run(workload, "all_bank").hmean_ipc
    rows = []
    for b in banks:
        value = runner.run(workload, "codesign", banks_per_task=b).hmean_ipc
        rows.append(AblationRow("banks_per_task", f"{b} banks", speedup(value, base)))
    return rows


def component_study(
    runner: SweepRunner | None = None, workload: str = "WL-6"
) -> list[AblationRow]:
    """Which ingredient buys what."""
    runner = runner or SweepRunner()
    variants = [
        ("per_bank (hw baseline)", "per_bank"),
        ("same-bank schedule only", "same_bank_hw_only"),
        ("partitioning only", "partition_only"),
        ("full co-design (soft)", "codesign"),
        ("co-design, hard partition", "codesign_hard"),
        ("co-design, best effort", "codesign_best_effort"),
    ]
    runner.prefetch(
        [runner.spec(workload, "all_bank")]
        + [runner.spec(workload, name) for _, name in variants]
    )
    base = runner.run(workload, "all_bank").hmean_ipc
    rows = []
    for label, scenario_name in variants:
        value = runner.run(workload, scenario_name).hmean_ipc
        rows.append(AblationRow("components", label, speedup(value, base)))
    return rows


def format_results(rows: list[AblationRow]) -> str:
    return format_table(
        ["study", "variant", "IPC vs all-bank"],
        [[r.study, r.variant, format_percent(r.improvement)] for r in rows],
        title="Ablation studies",
    )
