"""Figure 13: results with 32 ms retention (operation above 85C).

Halving tREFW doubles the refresh rate; the OS quantum shrinks to 2 ms so
the co-design's quantum/stretch alignment still holds (the paper's
footnote 12).  Paper averages at 32 Gb: co-design +34.1% over all-bank,
+6.7% over per-bank.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import speedup
from repro.experiments.report import format_percent, format_table
from repro.experiments.runner import SweepRunner
from repro.units import ms

DENSITIES = (16, 24, 32)
SCHEMES = ("per_bank", "codesign")


@dataclass
class Figure13Row:
    density_gbit: int
    workload: str
    scheme: str
    improvement: float  # vs all-bank at 32ms


def sweep_specs(runner: SweepRunner) -> list:
    """Every RunSpec this figure needs, for batch submission."""
    return [
        runner.spec(
            workload, scheme, density_gbit=density, trefw_ps=ms(32)
        )
        for density in DENSITIES
        for workload in runner.profile.workloads
        for scheme in ("all_bank", *SCHEMES)
    ]


def run(runner: SweepRunner | None = None) -> list[Figure13Row]:
    runner = runner or SweepRunner()
    runner.prefetch(sweep_specs(runner))
    rows = []
    for density in DENSITIES:
        overrides = {"density_gbit": density, "trefw_ps": ms(32)}
        for workload in runner.profile.workloads:
            base = runner.run(workload, "all_bank", **overrides).hmean_ipc
            for scheme in SCHEMES:
                value = runner.run(workload, scheme, **overrides).hmean_ipc
                rows.append(
                    Figure13Row(density, workload, scheme, speedup(value, base))
                )
    return rows


def averages(rows: list[Figure13Row]) -> dict[tuple[int, str], float]:
    result: dict[tuple[int, str], float] = {}
    for density in DENSITIES:
        for scheme in SCHEMES:
            values = [
                r.improvement
                for r in rows
                if r.density_gbit == density and r.scheme == scheme
            ]
            if values:
                result[(density, scheme)] = sum(values) / len(values)
    return result


def format_results(rows: list[Figure13Row]) -> str:
    table = format_table(
        ["density", "workload", "scheme", "IPC vs all-bank"],
        [
            [f"{r.density_gbit}Gb", r.workload, r.scheme,
             format_percent(r.improvement)]
            for r in rows
        ],
        title="Figure 13: 32 ms retention (normalized to all-bank refresh)",
    )
    avg = averages(rows)
    summary = "\n".join(
        f"  average @ {d}Gb: {s} {format_percent(avg[(d, s)])}"
        for d in DENSITIES
        for s in SCHEMES
    )
    return f"{table}\n{summary}"
