"""Persistent, content-addressed cache of simulation results.

Layout (all JSON, one file per run)::

    <root>/v<SCHEMA>/<hh>/<content-hash>.json
        {"schema": <SCHEMA>, "spec": {...}, "result": {...}}

* ``<root>`` defaults to ``~/.cache/repro`` and is overridable with the
  ``REPRO_CACHE_DIR`` environment variable or the ``--cache-dir`` CLI
  flag.
* The ``v<SCHEMA>`` directory namespaces the serialization layout: any
  schema bump simply leaves old entries unread (and re-computable) —
  there is no in-place migration.
* Corruption tolerance: a truncated, garbled or stale entry is treated
  as a miss and recomputed; the cache never crashes a sweep.  Writes are
  atomic (temp file + ``os.replace``) so a killed run cannot leave a
  half-written entry behind.
* Eviction: none automatic.  Entries are small (a few KB); deleting the
  cache directory (or any subset of it) at any time is always safe.
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.core.results import RESULT_SCHEMA, RunResult
from repro.core.runspec import SPEC_SCHEMA, RunSpec
from repro.errors import ReproError

#: Combined schema tag for cache entries; bumping either layout version
#: retires every existing entry.
CACHE_SCHEMA = f"{SPEC_SCHEMA}.{RESULT_SCHEMA}"

#: Environment variable overriding the cache root directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro"


def result_entry_payload(spec: RunSpec, result: RunResult) -> dict:
    """The canonical spec+result entry: the cache file layout, reused by
    sweep output directories so ``repro.obs diff DIR_A DIR_B`` can match
    entries from either origin by spec content hash."""
    return {
        "schema": CACHE_SCHEMA,
        "spec": spec.to_dict(),
        "result": result.to_dict(),
    }


def write_result_entry(
    directory: str | os.PathLike, spec: RunSpec, result: RunResult
) -> pathlib.Path:
    """Write one ``<content-hash>.json`` entry under *directory*."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{spec.content_hash()}.json"
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result_entry_payload(spec, result), fh, indent=2)
        fh.write("\n")
    return path


def read_result_entry(path: str | os.PathLike) -> tuple[dict, dict]:
    """Read one entry back as ``(spec_dict, result_dict)``.

    Raises ``ValueError`` on anything that is not a spec+result entry
    (callers scanning a directory treat that as "skip this file").
    """
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or "spec" not in data or "result" not in data:
        raise ValueError(f"{path}: not a spec+result entry")
    if not isinstance(data["spec"], dict) or not isinstance(data["result"], dict):
        raise ValueError(f"{path}: malformed spec/result payload")
    return data["spec"], data["result"]


class ResultCache:
    """Content-addressed ``RunSpec -> RunResult`` store on disk."""

    def __init__(self, root: str | os.PathLike | None = None):
        base = pathlib.Path(root) if root is not None else default_cache_dir()
        self.root = base / f"v{CACHE_SCHEMA}"
        self.hits = 0
        self.misses = 0

    def path(self, key: str) -> pathlib.Path:
        """On-disk location of the entry for content-hash *key*."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> RunResult | None:
        """The cached result for *key*, or None (miss/corrupt/stale)."""
        path = self.path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
            if data.get("schema") != CACHE_SCHEMA:
                raise ValueError(f"stale schema {data.get('schema')!r}")
            result = RunResult.from_dict(data["result"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError, ReproError):
            # Corrupt or stale entry: drop it and recompute.
            self.misses += 1
            self._discard(path)
            return None
        self.hits += 1
        return result

    def put(self, key: str, spec: RunSpec, result: RunResult) -> None:
        """Store *result* for *key* atomically; failures are non-fatal."""
        path = self.path(key)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        payload = {
            "schema": CACHE_SCHEMA,
            "spec": spec.to_dict(),
            "result": result.to_dict(),
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
            os.replace(tmp, path)
        except OSError:
            # A read-only or full filesystem degrades to "no cache".
            self._discard(tmp)

    @staticmethod
    def _discard(path: pathlib.Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
