"""Experiment harness: one module per paper figure (see DESIGN.md §4).

Importing figure modules ad hoc (``from repro.experiments import
figure9``) is deprecated: go through :func:`repro.api.figure` (or the
``python -m repro.experiments`` CLI), which resolve the module and call
its ``run()`` entry point for you.  The old imports keep working behind
a :class:`DeprecationWarning` shim below.
"""

import importlib
import warnings

from repro.experiments.cache import ResultCache, default_cache_dir
from repro.experiments.runner import (
    ExperimentProfile,
    FULL_PROFILE,
    QUICK_PROFILE,
    active_profile,
    default_jobs,
    SweepRunner,
)

__all__ = [
    "ExperimentProfile",
    "FULL_PROFILE",
    "QUICK_PROFILE",
    "active_profile",
    "default_jobs",
    "ResultCache",
    "default_cache_dir",
    "SweepRunner",
]

#: Figure modules reachable through the deprecated attribute shim.
_FIGURE_MODULES = frozenset(
    {f"figure{n}" for n in (3, 4, 5, 9, 10, 11, 12, 13, 14, 15)}
    | {"ablations"}
)


def __getattr__(name: str):
    """Deprecated ad-hoc figure imports (PEP 562).

    ``from repro.experiments import figure9`` still works, but warns and
    points at :func:`repro.api.figure`.  A direct ``import
    repro.experiments.figure9`` (what the experiments CLI does) binds
    the submodule attribute without passing through here.
    """
    if name in _FIGURE_MODULES:
        warnings.warn(
            f"importing repro.experiments.{name} directly is deprecated; "
            f"use repro.api.figure({name.removeprefix('figure')!r}) or "
            "the `python -m repro.experiments` CLI",
            DeprecationWarning,
            stacklevel=2,
        )
        module = importlib.import_module(f"repro.experiments.{name}")
        globals()[name] = module
        return module
    raise AttributeError(
        f"module 'repro.experiments' has no attribute {name!r}"
    )
