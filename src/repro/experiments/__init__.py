"""Experiment harness: one module per paper figure (see DESIGN.md §4)."""

from repro.experiments.cache import ResultCache, default_cache_dir
from repro.experiments.runner import (
    ExperimentProfile,
    FULL_PROFILE,
    QUICK_PROFILE,
    active_profile,
    default_jobs,
    SweepRunner,
)

__all__ = [
    "ExperimentProfile",
    "FULL_PROFILE",
    "QUICK_PROFILE",
    "active_profile",
    "default_jobs",
    "ResultCache",
    "default_cache_dir",
    "SweepRunner",
]
