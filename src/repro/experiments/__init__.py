"""Experiment harness: one module per paper figure (see DESIGN.md §4)."""

from repro.experiments.runner import (
    ExperimentProfile,
    FULL_PROFILE,
    QUICK_PROFILE,
    active_profile,
    SweepRunner,
)

__all__ = [
    "ExperimentProfile",
    "FULL_PROFILE",
    "QUICK_PROFILE",
    "active_profile",
    "SweepRunner",
]
