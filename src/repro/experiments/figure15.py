"""Figure 15: sensitivity to core count and consolidation ratio.

Sweeps dual/quad cores at 1:2 and 1:4 consolidation (4-16 tasks) across
16/24/32 Gb densities, reporting average improvements of per-bank refresh
and the co-design over all-bank refresh.

Partition sizing follows Section 6.6: at 1:4 each task keeps 6 banks per
rank; at 1:2, 4 banks.  Quad-core runs use 2 DIMMs per channel (4 ranks),
the scaling the paper applies when more tasks need more capacity and BLP.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.dram_configs import DramOrganization
from repro.core.metrics import speedup
from repro.experiments.report import format_percent, format_table
from repro.experiments.runner import SweepRunner
from repro.workloads.mixes import scaled_mix

DENSITIES = (16, 24, 32)
#: (cores, consolidation ratio)
POINTS = ((2, 2), (2, 4), (4, 2), (4, 4))
SCHEMES = ("per_bank", "codesign")


@dataclass
class Figure15Row:
    num_cores: int
    ratio: int
    density_gbit: int
    scheme: str
    improvement: float  # vs all-bank


def _config_overrides(num_cores: int, density: int) -> dict:
    from repro.config.system_configs import CoreConfig

    overrides: dict = {
        "density_gbit": density,
        "cores": CoreConfig(num_cores=num_cores),
    }
    if num_cores >= 4:
        overrides["organization"] = DramOrganization(ranks_per_channel=4)
    return overrides


def sweep_specs(runner: SweepRunner,
                workloads: tuple[str, ...] = ("WL-1", "WL-5", "WL-6", "WL-8")) -> list:
    """Every RunSpec this figure needs, for batch submission."""
    specs = []
    for num_cores, ratio in POINTS:
        num_tasks = num_cores * ratio
        for density in DENSITIES:
            overrides = _config_overrides(num_cores, density)
            for workload in workloads:
                tasks = scaled_mix(workload, num_tasks)
                for scheme in ("all_bank", *SCHEMES):
                    specs.append(runner.spec(tasks, scheme, **overrides))
    return specs


def run(runner: SweepRunner | None = None,
        workloads: tuple[str, ...] = ("WL-1", "WL-5", "WL-6", "WL-8")) -> list[Figure15Row]:
    runner = runner or SweepRunner()
    runner.prefetch(sweep_specs(runner, workloads))
    rows = []
    for num_cores, ratio in POINTS:
        num_tasks = num_cores * ratio
        for density in DENSITIES:
            overrides = _config_overrides(num_cores, density)
            improvements: dict[str, list[float]] = {s: [] for s in SCHEMES}
            for workload in workloads:
                specs = scaled_mix(workload, num_tasks)
                label = f"{workload}x{num_tasks}"
                base = runner.run_specs(
                    label, specs, "all_bank", **overrides
                ).hmean_ipc
                for scheme in SCHEMES:
                    value = runner.run_specs(
                        label, specs, scheme, **overrides
                    ).hmean_ipc
                    improvements[scheme].append(speedup(value, base))
            for scheme in SCHEMES:
                values = improvements[scheme]
                rows.append(
                    Figure15Row(
                        num_cores=num_cores,
                        ratio=ratio,
                        density_gbit=density,
                        scheme=scheme,
                        improvement=sum(values) / len(values),
                    )
                )
    return rows


def format_results(rows: list[Figure15Row]) -> str:
    return format_table(
        ["cores", "ratio", "density", "scheme", "IPC vs all-bank"],
        [
            [r.num_cores, f"1:{r.ratio}", f"{r.density_gbit}Gb", r.scheme,
             format_percent(r.improvement)]
            for r in rows
        ],
        title="Figure 15: sensitivity to cores x consolidation ratio",
    )
