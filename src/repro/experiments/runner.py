"""Sweep infrastructure shared by all figure experiments.

A :class:`SweepRunner` turns every data point into a serializable
:class:`~repro.core.runspec.RunSpec` and resolves it through three tiers:

1. an in-process memo (same object returned for repeated calls),
2. a persistent on-disk result cache keyed by the spec's content hash
   (``~/.cache/repro`` or ``REPRO_CACHE_DIR``; schema-versioned and
   corruption-tolerant — see :mod:`repro.experiments.cache`), and
3. actual simulation, fanned out over a ``ProcessPoolExecutor`` when a
   figure batch-submits its sweep via :meth:`SweepRunner.prefetch`.

Parallelism defaults to the CPU count and is controlled by the
``REPRO_JOBS`` environment variable or the ``--jobs`` CLI flag.  The
engine is fully deterministic, so parallel results are bit-identical to
sequential ones, and a warm cache re-runs any figure with zero
simulations executed.

Profiles control simulation cost: ``QUICK_PROFILE`` (default; suitable for
the pytest-benchmark harness) and ``FULL_PROFILE`` (longer windows, finer
refresh scaling) — select with the ``REPRO_PROFILE=full`` environment
variable.
"""

from __future__ import annotations

import functools
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.core.checkpoint import CheckpointStore
from repro.core.results import RunResult
from repro.core.runspec import RunSpec
from repro.core.simulator import make_run_spec, run_spec as execute_run_spec
from repro.core.system import Scenario
from repro.experiments.cache import ResultCache
from repro.workloads.benchmark import BenchmarkSpec
from repro.workloads.mixes import mix_names

#: Environment variable setting the default worker-process count.
JOBS_ENV = "REPRO_JOBS"


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (default: CPU count)."""
    env = os.environ.get(JOBS_ENV)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


@dataclass(frozen=True)
class ExperimentProfile:
    """How much simulation to spend per data point."""

    name: str
    num_windows: float
    warmup_windows: float
    refresh_scale: int
    workloads: tuple[str, ...]


QUICK_PROFILE = ExperimentProfile(
    name="quick",
    num_windows=1.0,
    warmup_windows=0.25,
    refresh_scale=256,
    workloads=tuple(mix_names()),
)

FULL_PROFILE = ExperimentProfile(
    name="full",
    num_windows=2.0,
    warmup_windows=0.5,
    refresh_scale=64,
    workloads=tuple(mix_names()),
)

_PROFILES = {"quick": QUICK_PROFILE, "full": FULL_PROFILE}


def active_profile() -> ExperimentProfile:
    """Profile selected by ``REPRO_PROFILE`` (default: quick)."""
    return _PROFILES.get(os.environ.get("REPRO_PROFILE", "quick"), QUICK_PROFILE)


class SweepRunner:
    """Executes :class:`RunSpec`s with memoization, disk caching and
    process-parallel batch fan-out."""

    def __init__(
        self,
        profile: Optional[ExperimentProfile] = None,
        jobs: int | None = None,
        cache_dir: str | os.PathLike | None = None,
        use_cache: bool = True,
    ):
        self.profile = profile or active_profile()
        self.jobs = jobs if jobs is not None else default_jobs()
        self.disk_cache = ResultCache(cache_dir) if use_cache else None
        # Warm-start checkpoints share the cache root; without caching a
        # warm-started sweep still works, it just re-runs each prefix.
        self.checkpoint_store = (
            CheckpointStore(cache_dir) if use_cache else None
        )
        self._memo: dict[str, RunResult] = {}
        #: Simulations actually executed (memo and disk hits excluded).
        self.runs_executed = 0
        self.memo_hits = 0

    @property
    def disk_hits(self) -> int:
        return self.disk_cache.hits if self.disk_cache is not None else 0

    # -- spec construction ------------------------------------------------------

    def spec(
        self,
        workload: str | Sequence[BenchmarkSpec],
        scenario: str | Scenario,
        banks_per_task: int | None = None,
        sample_windows: int | None = None,
        warmup_scenario: str | None = None,
        **config_overrides,
    ) -> RunSpec:
        """The :class:`RunSpec` for one data point under the active profile.

        ``sample_windows`` attaches a per-window timeseries to the result
        (cache-compatible: it is part of the spec's content hash).
        ``warmup_scenario`` makes the run warm-started: scenarios sharing
        one warm-up prefix reuse a single cached measurement-boundary
        checkpoint (see :func:`repro.core.simulator.warm_start_state`).
        """
        overrides = dict(config_overrides)
        overrides.setdefault("refresh_scale", self.profile.refresh_scale)
        spec = make_run_spec(
            workload,
            scenario,
            num_windows=self.profile.num_windows,
            warmup_windows=self.profile.warmup_windows,
            banks_per_task=banks_per_task,
            sample_windows=sample_windows,
            **overrides,
        )
        if warmup_scenario is not None:
            spec = spec.with_(warmup_scenario=warmup_scenario)
            spec.validate()
        return spec

    # -- execution --------------------------------------------------------------

    def run_spec(self, spec: RunSpec) -> RunResult:
        """Resolve one spec: memo -> disk cache -> execute."""
        key = spec.content_hash()
        result = self._memo.get(key)
        if result is not None:
            self.memo_hits += 1
            return result
        if self.disk_cache is not None:
            result = self.disk_cache.get(key)
            if result is not None:
                self._memo[key] = result
                return result
        self.runs_executed += 1
        result = execute_run_spec(spec, checkpoint_store=self.checkpoint_store)
        self._memo[key] = result
        if self.disk_cache is not None:
            self.disk_cache.put(key, spec, result)
        return result

    def run(
        self,
        workload: str | Sequence[BenchmarkSpec],
        scenario: str | Scenario,
        banks_per_task: int | None = None,
        **config_overrides,
    ) -> RunResult:
        """One simulation under the active profile (memoized + cached)."""
        return self.run_spec(
            self.spec(
                workload, scenario, banks_per_task=banks_per_task, **config_overrides
            )
        )

    def run_specs(
        self,
        label: str,
        specs: Sequence[BenchmarkSpec],
        scenario: str | Scenario,
        banks_per_task: int | None = None,
        **config_overrides,
    ) -> RunResult:
        """Like :meth:`run` but with an explicit benchmark-spec list.

        *label* is retained for callers' readability only; keying is by
        the content hash of the actual spec list, so same-named labels
        can never alias different workloads.
        """
        del label
        return self.run(
            list(specs), scenario, banks_per_task=banks_per_task, **config_overrides
        )

    def prefetch(self, specs: Iterable[RunSpec]) -> int:
        """Batch-resolve *specs*, executing cache misses in parallel.

        Deduplicates by content hash, satisfies what it can from the memo
        and the disk cache, and fans the remainder out over a
        ``ProcessPoolExecutor`` with :attr:`jobs` workers (inline when a
        single job or a single miss makes a pool pointless).  After
        prefetching, every ``run()`` call covered by *specs* is a memo
        hit.  Returns the number of simulations executed.
        """
        pending: dict[str, RunSpec] = {}
        for spec in specs:
            key = spec.content_hash()
            if key in self._memo or key in pending:
                continue
            if self.disk_cache is not None:
                cached = self.disk_cache.get(key)
                if cached is not None:
                    self._memo[key] = cached
                    continue
            pending[key] = spec
        if not pending:
            return 0

        items = list(pending.items())
        # CheckpointStore holds only a path, so the partial pickles into
        # the worker pool; workers then share warm-start prefixes on disk.
        execute = functools.partial(
            execute_run_spec, checkpoint_store=self.checkpoint_store
        )
        if self.jobs > 1 and len(items) > 1:
            workers = min(self.jobs, len(items))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                results = list(
                    pool.map(execute, [s for _, s in items], chunksize=1)
                )
        else:
            results = [execute(s) for _, s in items]

        for (key, spec), result in zip(items, results):
            self.runs_executed += 1
            self._memo[key] = result
            if self.disk_cache is not None:
                self.disk_cache.put(key, spec, result)
        return len(items)

    # -- aggregation ------------------------------------------------------------

    def average_hmean_ipc(
        self,
        scenario: str | Scenario,
        workloads: Optional[Sequence[str]] = None,
        banks_per_task: int | None = None,
        **config_overrides,
    ) -> float:
        """Arithmetic mean of hmean-IPC across workloads (paper averages)."""
        names = list(workloads or self.profile.workloads)
        values = [
            self.run(
                w, scenario, banks_per_task=banks_per_task, **config_overrides
            ).hmean_ipc
            for w in names
        ]
        return sum(values) / len(values)
