"""Sweep infrastructure shared by all figure experiments.

A :class:`SweepRunner` memoizes simulation runs within one process so
figures that share underlying runs (e.g. Figure 10's IPC and Figure 11's
latency views of the same sweep) pay for each configuration once.

Profiles control simulation cost: ``QUICK_PROFILE`` (default; suitable for
the pytest-benchmark harness) and ``FULL_PROFILE`` (longer windows, finer
refresh scaling) — select with the ``REPRO_PROFILE=full`` environment
variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.config.system_configs import SystemConfig, default_system_config
from repro.core.results import RunResult
from repro.core.simulator import run_simulation
from repro.core.system import Scenario
from repro.workloads.mixes import mix_names


@dataclass(frozen=True)
class ExperimentProfile:
    """How much simulation to spend per data point."""

    name: str
    num_windows: float
    warmup_windows: float
    refresh_scale: int
    workloads: tuple[str, ...]


QUICK_PROFILE = ExperimentProfile(
    name="quick",
    num_windows=1.0,
    warmup_windows=0.25,
    refresh_scale=256,
    workloads=tuple(mix_names()),
)

FULL_PROFILE = ExperimentProfile(
    name="full",
    num_windows=2.0,
    warmup_windows=0.5,
    refresh_scale=64,
    workloads=tuple(mix_names()),
)

_PROFILES = {"quick": QUICK_PROFILE, "full": FULL_PROFILE}


def active_profile() -> ExperimentProfile:
    """Profile selected by ``REPRO_PROFILE`` (default: quick)."""
    return _PROFILES.get(os.environ.get("REPRO_PROFILE", "quick"), QUICK_PROFILE)


class SweepRunner:
    """Runs and memoizes simulations keyed by their full configuration."""

    def __init__(self, profile: Optional[ExperimentProfile] = None):
        self.profile = profile or active_profile()
        self._cache: dict[tuple, RunResult] = {}
        self.runs_executed = 0

    def run(
        self,
        workload: str,
        scenario: str | Scenario,
        banks_per_task: int | None = None,
        **config_overrides,
    ) -> RunResult:
        """One simulation under the active profile (memoized)."""
        overrides = dict(config_overrides)
        overrides.setdefault("refresh_scale", self.profile.refresh_scale)
        scenario_key = scenario if isinstance(scenario, str) else scenario.name
        key = (
            workload,
            scenario_key,
            banks_per_task,
            tuple(sorted(overrides.items())),
        )
        if key not in self._cache:
            self.runs_executed += 1
            self._cache[key] = run_simulation(
                workload,
                scenario,
                num_windows=self.profile.num_windows,
                warmup_windows=self.profile.warmup_windows,
                banks_per_task=banks_per_task,
                **overrides,
            )
        return self._cache[key]

    def run_specs(
        self,
        label: str,
        specs,
        scenario: str | Scenario,
        banks_per_task: int | None = None,
        **config_overrides,
    ) -> RunResult:
        """Like :meth:`run` but with an explicit benchmark-spec list,
        memoized under *label* (which must uniquely describe *specs*)."""
        overrides = dict(config_overrides)
        overrides.setdefault("refresh_scale", self.profile.refresh_scale)
        scenario_key = scenario if isinstance(scenario, str) else scenario.name
        key = (
            "specs:" + label,
            scenario_key,
            banks_per_task,
            tuple(sorted(overrides.items())),
        )
        if key not in self._cache:
            self.runs_executed += 1
            self._cache[key] = run_simulation(
                list(specs),
                scenario,
                num_windows=self.profile.num_windows,
                warmup_windows=self.profile.warmup_windows,
                banks_per_task=banks_per_task,
                **overrides,
            )
        return self._cache[key]

    def average_hmean_ipc(
        self,
        scenario: str | Scenario,
        workloads: Optional[Sequence[str]] = None,
        banks_per_task: int | None = None,
        **config_overrides,
    ) -> float:
        """Arithmetic mean of hmean-IPC across workloads (paper averages)."""
        names = list(workloads or self.profile.workloads)
        values = [
            self.run(
                w, scenario, banks_per_task=banks_per_task, **config_overrides
            ).hmean_ipc
            for w in names
        ]
        return sum(values) / len(values)
