"""Plain-text table formatting for experiment results."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned text table (monospace, for terminals and logs)."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(w) for cell, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_percent(value: float) -> str:
    """0.162 -> '+16.2%'; -0.05 -> '-5.0%'."""
    return f"{value * 100:+.1f}%"


def format_run_stats(runner) -> str:
    """One-line execution summary for a SweepRunner-backed sweep.

    Shows how the batch was satisfied: simulations actually executed,
    in-process memo hits, and persistent disk-cache hits.
    """
    parts = [
        f"{runner.runs_executed} runs executed",
        f"{runner.memo_hits} memo hits",
    ]
    if runner.disk_cache is not None:
        parts.append(f"{runner.disk_hits} disk-cache hits")
    else:
        parts.append("disk cache off")
    parts.append(f"jobs={runner.jobs}")
    return ", ".join(parts)
