#!/usr/bin/env python
"""Emit a BENCH_<date>.json perf-trajectory report.

Runs every micro-kernel in :mod:`repro.bench.kernels` plus one WL-6
codesign end-to-end simulation and writes a JSON report with wall
times, events/sec and ``events_processed``.  Stdlib only.

Usage::

    PYTHONPATH=src python scripts/bench_report.py [--out DIR] [--repeat N]
        [--check-determinism] [--quick] [--label SUFFIX]

``--check-determinism`` runs the operation-count/digest portion twice
and exits non-zero if any kernel's operation count, the end-to-end
``events_processed`` or the result digest differ between the two runs —
wall times are reported but never gated (CI machines are noisy; event
schedules must not be).
"""

from __future__ import annotations

import argparse
import datetime
import json
import platform
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench import (  # noqa: E402
    KERNELS,
    controller_cost_models,
    run_kernel,
    service_tier_histograms,
    wl6_codesign_end_to_end,
)


def git_revision() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
        return out.stdout.strip() or "unknown"
    except OSError:
        return "unknown"


def collect(repeat: int, quick: bool) -> dict:
    kernels = [run_kernel(name, repeat=repeat).to_dict() for name in KERNELS]
    report = {
        "schema": 1,
        "date": datetime.date.today().isoformat(),
        "git": git_revision(),
        "python": platform.python_version(),
        "kernels": kernels,
        # Dispatch-work counters from one extra (untimed) run of each
        # controller kernel — all pure functions of the kernel arguments.
        "cost_model": controller_cost_models(),
        # Per-tier service latency-histogram snapshots (deterministic half
        # only).  Informational: bench_trend.py renders them but the
        # determinism signature deliberately excludes them.
        "service": service_tier_histograms(),
    }
    if not quick:
        report["end_to_end"] = wl6_codesign_end_to_end()
    return report


#: Cost-model fields that are externally pinned behavior and join the
#: exact determinism signature; internal sweep-work counters are instead
#: ratio-gated with tolerance by scripts/bench_trend.py.
COST_MODEL_PINNED_FIELDS = (
    "serviced",
    "completed",
    "row_hit_pops",
    "drain_entries",
    "drain_exits",
)


def determinism_signature(report: dict) -> dict:
    """The gated subset: operation counts, result digests and the
    externally pinned cost-model fields (mirrored in bench_trend.py)."""
    sig = {k["name"]: k["ops"] for k in report["kernels"]}
    end = report.get("end_to_end")
    if end is not None:
        sig["end_to_end.events_processed"] = end["events_processed"]
        sig["end_to_end.result_sha256"] = end["result_sha256"]
    for name, model in sorted((report.get("cost_model") or {}).items()):
        for field in COST_MODEL_PINNED_FIELDS:
            if field in model:
                sig[f"cost_model.{name}.{field}"] = model[field]
    return sig


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=".", help="output directory")
    parser.add_argument("--repeat", type=int, default=5, help="best-of repeats")
    parser.add_argument(
        "--quick", action="store_true", help="skip the WL-6 end-to-end run"
    )
    parser.add_argument(
        "--check-determinism",
        action="store_true",
        help="run twice; fail if event counts, result digests or any "
             "dispatch cost-model counter differ",
    )
    parser.add_argument(
        "--label",
        default="",
        help="suffix appended to the report filename "
             "(BENCH_<date><label>.json) for same-day re-baselines",
    )
    args = parser.parse_args()

    report = collect(args.repeat, args.quick)
    if args.check_determinism:
        second = collect(1, args.quick)
        first_sig = determinism_signature(report)
        second_sig = determinism_signature(second)
        if first_sig != second_sig:
            diff = {
                key: (first_sig.get(key), second_sig.get(key))
                for key in sorted(set(first_sig) | set(second_sig))
                if first_sig.get(key) != second_sig.get(key)
            }
            print("DETERMINISM FAILURE: runs disagree on", file=sys.stderr)
            print(json.dumps(diff, indent=2), file=sys.stderr)
            return 1
        # The signature pins the externally visible fields; the double
        # run must also agree on every internal sweep-work counter.
        if report["cost_model"] != second["cost_model"]:
            print(
                "DETERMINISM FAILURE: dispatch cost models disagree",
                file=sys.stderr,
            )
            print(
                json.dumps(
                    {"first": report["cost_model"],
                     "second": second["cost_model"]},
                    indent=2,
                ),
                file=sys.stderr,
            )
            return 1
        report["determinism_checked"] = True

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    out_path = out_dir / f"BENCH_{report['date']}{args.label}.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    for kernel in report["kernels"]:
        print(
            f"  {kernel['name']:30s} {kernel['wall_seconds']*1000:9.2f} ms"
            f"  {kernel['ops_per_sec']:>12,d} ops/s"
        )
    end = report.get("end_to_end")
    if end is not None:
        print(
            f"  {end['name']:30s} {end['wall_seconds']:9.3f} s "
            f" {end['events_processed']:,} events"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
