#!/usr/bin/env python3
"""Schema-validate a Chrome trace-event JSON file produced by --trace.

Used by the CI trace-smoke job::

    python scripts/validate_trace.py trace.json

Checks the subset of the trace-event format the repo relies on (legacy
Catapult JSON object form, loadable in Perfetto) plus the repo-specific
track layout: at least one refresh-stretch slice on the DRAM process and
at least one quantum-pick slice per traced core, with metadata naming
every track.  Also checks stream ordering: slice start times are
non-decreasing within each track (the sinks see events in simulation
order), and refresh-stretch slices never overlap (the same-bank schedule
refreshes one bank at a time).  Exits non-zero with one message per
violation.

With ``--expect-spans`` the file is a *service* trace (written by
``python -m repro submit --trace-spans``): at least one span slice
(``cat == "span"`` on the service process) is required and the
simulation-track requirements (refresh stretches, per-core quantum
picks) are relaxed — span traces carry only the serving-path lanes.
Span slices are exempt from the per-track monotonic-start check in both
modes: they are exported sorted by (trace, job, span id), a
deterministic order, while their timestamps are wall-clock and may
legitimately interleave across concurrent jobs.
"""

import argparse
import json
import sys

REQUIRED_TOP = {"traceEvents", "displayTimeUnit", "metadata"}
PHASES = {"X", "M", "i"}


def validate(payload, expect_spans: bool = False) -> list:
    errors = []
    if not isinstance(payload, dict):
        return [f"top level must be a JSON object, got {type(payload).__name__}"]
    missing = REQUIRED_TOP - payload.keys()
    if missing:
        errors.append(f"missing top-level keys: {sorted(missing)}")
        return errors
    events = payload["traceEvents"]
    if not isinstance(events, list) or not events:
        return ["traceEvents must be a non-empty list"]

    named_tracks = set()
    slice_tracks = set()
    stretch_slices = 0
    span_slices = 0
    last_ts = {}  # (pid, tid) -> latest slice start seen on that track
    stretches = []  # (begin, end, name) of every refresh-stretch slice
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in PHASES:
            errors.append(f"{where}: unexpected phase {ph!r}")
            continue
        for key in ("pid", "name"):
            if key not in event:
                errors.append(f"{where}: missing {key!r}")
        if ph == "M":
            if event.get("name") not in ("process_name", "thread_name"):
                errors.append(f"{where}: unknown metadata {event.get('name')!r}")
            track = (event.get("pid"), event.get("tid"))
            named_tracks.add(track)
            continue
        if not isinstance(event.get("ts"), int) or event["ts"] < 0:
            errors.append(f"{where}: ts must be a non-negative integer")
        if ph == "X":
            if not isinstance(event.get("dur"), int) or event["dur"] < 0:
                errors.append(f"{where}: dur must be a non-negative integer")
            track = (event.get("pid"), event.get("tid"))
            slice_tracks.add(track)
            is_span = event.get("cat") == "span"
            if is_span:
                span_slices += 1
            ts = event.get("ts")
            if isinstance(ts, int) and not is_span:
                prev = last_ts.get(track)
                if prev is not None and ts < prev:
                    errors.append(
                        f"{where}: ts {ts} goes backwards on track "
                        f"pid={track[0]} tid={track[1]} (previous slice "
                        f"started at {prev})"
                    )
                last_ts[track] = ts
            if str(event.get("name", "")).startswith("refresh b"):
                stretch_slices += 1
                if isinstance(ts, int) and isinstance(event.get("dur"), int):
                    stretches.append((ts, ts + event["dur"], event["name"]))

    # Same-bank stretches are strictly sequential: each bank's slice
    # must end before the next bank's begins.
    stretches.sort()
    for (b0, e0, n0), (b1, e1, n1) in zip(stretches, stretches[1:]):
        if b1 < e0:
            errors.append(
                f"refresh stretches overlap: {n0} [{b0}, {e0}) and "
                f"{n1} [{b1}, {e1})"
            )

    # Every slice lands on a track that metadata names (process-level
    # names have tid None in the key, so check pid coverage).
    named_pids = {pid for pid, _ in named_tracks}
    for pid, tid in sorted(slice_tracks, key=str):
        if pid not in named_pids:
            errors.append(f"slices on unnamed process pid={pid}")
    if expect_spans:
        if span_slices == 0:
            errors.append("no span slices (cat 'span'); tracing was off?")
        return errors
    if stretch_slices == 0:
        errors.append("no refresh-stretch slices (name 'refresh b<bank>')")
    cpu_tracks = {t for t in slice_tracks if t[0] != 1}
    if not cpu_tracks:
        errors.append("no per-core quantum-pick slices")
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="path to a --trace output file")
    parser.add_argument(
        "--expect-spans", action="store_true",
        help="validate a serving-path span trace: require at least one "
             "cat='span' slice, skip the simulation-track requirements",
    )
    args = parser.parse_args(argv)
    with open(args.trace) as f:
        payload = json.load(f)
    errors = validate(payload, expect_spans=args.expect_spans)
    for message in errors:
        print(f"{args.trace}: {message}", file=sys.stderr)
    if not errors:
        events = payload["traceEvents"]
        slices = sum(1 for e in events if e.get("ph") == "X")
        print(f"{args.trace}: OK ({len(events)} events, {slices} slices)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
