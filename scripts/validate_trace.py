#!/usr/bin/env python3
"""Schema-validate a Chrome trace-event JSON file produced by --trace.

Used by the CI trace-smoke job::

    python scripts/validate_trace.py trace.json

Checks the subset of the trace-event format the repo relies on (legacy
Catapult JSON object form, loadable in Perfetto) plus the repo-specific
track layout: at least one refresh-stretch slice on the DRAM process and
at least one quantum-pick slice per traced core, with metadata naming
every track.  Exits non-zero with one message per violation.
"""

import argparse
import json
import sys

REQUIRED_TOP = {"traceEvents", "displayTimeUnit", "metadata"}
PHASES = {"X", "M", "i"}


def validate(payload) -> list:
    errors = []
    if not isinstance(payload, dict):
        return [f"top level must be a JSON object, got {type(payload).__name__}"]
    missing = REQUIRED_TOP - payload.keys()
    if missing:
        errors.append(f"missing top-level keys: {sorted(missing)}")
        return errors
    events = payload["traceEvents"]
    if not isinstance(events, list) or not events:
        return ["traceEvents must be a non-empty list"]

    named_tracks = set()
    slice_tracks = set()
    stretch_slices = 0
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in PHASES:
            errors.append(f"{where}: unexpected phase {ph!r}")
            continue
        for key in ("pid", "name"):
            if key not in event:
                errors.append(f"{where}: missing {key!r}")
        if ph == "M":
            if event.get("name") not in ("process_name", "thread_name"):
                errors.append(f"{where}: unknown metadata {event.get('name')!r}")
            track = (event.get("pid"), event.get("tid"))
            named_tracks.add(track)
            continue
        if not isinstance(event.get("ts"), int) or event["ts"] < 0:
            errors.append(f"{where}: ts must be a non-negative integer")
        if ph == "X":
            if not isinstance(event.get("dur"), int) or event["dur"] < 0:
                errors.append(f"{where}: dur must be a non-negative integer")
            slice_tracks.add((event.get("pid"), event.get("tid")))
            if str(event.get("name", "")).startswith("refresh b"):
                stretch_slices += 1

    # Every slice lands on a track that metadata names (process-level
    # names have tid None in the key, so check pid coverage).
    named_pids = {pid for pid, _ in named_tracks}
    for pid, tid in sorted(slice_tracks, key=str):
        if pid not in named_pids:
            errors.append(f"slices on unnamed process pid={pid}")
    if stretch_slices == 0:
        errors.append("no refresh-stretch slices (name 'refresh b<bank>')")
    cpu_tracks = {t for t in slice_tracks if t[0] != 1}
    if not cpu_tracks:
        errors.append("no per-core quantum-pick slices")
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="path to a --trace output file")
    args = parser.parse_args(argv)
    with open(args.trace) as f:
        payload = json.load(f)
    errors = validate(payload)
    for message in errors:
        print(f"{args.trace}: {message}", file=sys.stderr)
    if not errors:
        events = payload["traceEvents"]
        slices = sum(1 for e in events if e.get("ph") == "X")
        print(f"{args.trace}: OK ({len(events)} events, {slices} slices)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
