#!/usr/bin/env python
"""Aggregate BENCH_<date>.json reports into a perf-trajectory table.

Every checked-in ``BENCH_*.json`` (written by ``scripts/bench_report.py``)
is one point on the repo's performance trajectory.  This tool lines them
up chronologically and, in ``--gate`` mode, compares a freshly produced
report against the latest checked-in one.  Stdlib only.

Usage::

    python scripts/bench_trend.py                      # print the table
    python scripts/bench_trend.py --gate --fresh /tmp/out/BENCH_*.json

The gate compares the *determinism signature* — per-kernel operation
counts, the end-to-end ``events_processed``, the result digest and the
externally pinned dispatch cost-model fields.  Those are pure functions
of the code and must match exactly; any drift means an unintended
behavior change (or a forgotten re-baseline).  Signature keys the
baseline predates (new kernels, new cost-model fields) are informational
only.  On top of the exact check, the dispatch cost-model *ratios*
(dead-pick share, stale-skip sweep length, row-hit pop share) are
compared with tolerances and fail the gate only when they drift in the
regressing direction — a relative hot-path regression check that still
lets internal-only scheduler changes through.  Wall times vary with the
host and are reported but never gated.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


#: Cost-model fields that are externally pinned behavior (service counts,
#: row-hit outcomes, drain transitions — all visible in timing/results) and
#: therefore belong in the exact determinism signature.  Internal sweep-work
#: counters (dead picks, stale skips, compactions) are deliberately NOT
#: exact-gated: they may shift under internal-only scheduler changes, and
#: are instead watched as ratios with tolerance (see COST_MODEL_RATIO_GATES).
COST_MODEL_PINNED_FIELDS = (
    "serviced",
    "completed",
    "row_hit_pops",
    "drain_entries",
    "drain_exits",
)

#: (field, direction, abs_tol, rel_tol) per controller kernel.  Direction
#: names the regressing drift: ``up`` fails when the fresh ratio rises
#: above baseline + tolerance, ``down`` when it falls below.  Tolerance is
#: max(abs_tol, |baseline| * rel_tol) so near-zero baselines are not
#: impossible to satisfy.
COST_MODEL_RATIO_GATES = (
    ("dead_pick_ratio", "up", 0.01, 0.10),
    ("stale_skips_per_pop", "up", 0.02, 0.10),
    ("row_hit_pop_ratio", "down", 0.01, 0.10),
)


def determinism_signature(report: dict) -> dict:
    """Gated subset: operation counts, result digests and the externally
    pinned cost-model fields.

    Mirrors ``scripts/bench_report.py`` (scripts are not a package, so
    these lines are repeated rather than imported).
    """
    sig = {k["name"]: k["ops"] for k in report["kernels"]}
    end = report.get("end_to_end")
    if end is not None:
        sig["end_to_end.events_processed"] = end["events_processed"]
        sig["end_to_end.result_sha256"] = end["result_sha256"]
    for name, model in sorted((report.get("cost_model") or {}).items()):
        for field in COST_MODEL_PINNED_FIELDS:
            if field in model:
                sig[f"cost_model.{name}.{field}"] = model[field]
    return sig


def load_reports(directory: Path) -> list:
    """All BENCH_*.json reports in *directory*, oldest first."""
    reports = []
    for path in sorted(directory.glob("BENCH_*.json")):
        with open(path, "r", encoding="utf-8") as f:
            report = json.load(f)
        report["_path"] = str(path)
        reports.append(report)
    return reports


def trajectory_table(reports: list) -> str:
    """One row per report; one column per kernel (wall ms) + end-to-end."""
    names = []
    for report in reports:
        for kernel in report["kernels"]:
            if kernel["name"] not in names:
                names.append(kernel["name"])

    # Kernel names are long; head the columns with indices and print a
    # legend so the table stays within a terminal.
    legend = [f"  k{i}: {name}" for i, name in enumerate(names)]
    header = ["date", "git"] + [f"k{i}" for i in range(len(names))] + ["e2e s"]
    rows = [header]
    for report in reports:
        walls = {k["name"]: k["wall_seconds"] for k in report["kernels"]}
        row = [report.get("date", "?"), report.get("git", "?")]
        for name in names:
            wall = walls.get(name)
            row.append(f"{wall * 1000:.1f}" if wall is not None else "-")
        end = report.get("end_to_end")
        row.append(f"{end['wall_seconds']:.2f}" if end else "-")
        rows.append(row)

    widths = [max(len(r[c]) for r in rows) for c in range(len(header))]
    lines = ["kernel wall times (ms):"] + legend + [""]
    for row in rows:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def trend_summary(reports: list) -> str:
    """Wall-time drift of the newest report vs its predecessor.

    Wall times are host-dependent and never gated, but the drift between
    consecutive checked-in points is still the first thing a reader wants
    from the trajectory.  With fewer than two points there is no trend to
    compute — say so instead of dividing by a missing predecessor.
    """
    if len(reports) < 2:
        return "no trajectory yet (a trend needs at least two checked-in reports)"
    prev, last = reports[-2], reports[-1]
    prev_walls = {k["name"]: k["wall_seconds"] for k in prev["kernels"]}
    parts = []
    for kernel in last["kernels"]:
        before = prev_walls.get(kernel["name"])
        if before:
            delta = (kernel["wall_seconds"] - before) / before * 100.0
            parts.append(f"{kernel['name']} {delta:+.1f}%")
    before_end, after_end = prev.get("end_to_end"), last.get("end_to_end")
    if before_end and after_end and before_end["wall_seconds"]:
        delta = (
            (after_end["wall_seconds"] - before_end["wall_seconds"])
            / before_end["wall_seconds"] * 100.0
        )
        parts.append(f"end_to_end {delta:+.1f}%")
    span = f"{prev.get('date', '?')} -> {last.get('date', '?')}"
    if not parts:
        return f"trend ({span}): no comparable kernels"
    return f"trend ({span}): " + ", ".join(parts)


def service_tier_summary(report: dict) -> str:
    """Per-tier request counts from the report's ``service`` section.

    Informational only: the service histograms sit outside the
    determinism signature, so this never gates — it just shows how the
    newest report's bench submissions resolved (execute / memo / cache)
    and how many simulated-cycle buckets each tier's histogram filled.
    """
    service = report.get("service")
    if not service:
        return "service tiers: (not recorded in this report)"
    parts = []
    for phase in sorted(service):
        snapshot = service[phase]
        tiers = snapshot.get("tiers", {})
        cycles = snapshot.get("cycles", {})
        tier_bits = ", ".join(
            f"{tier}={tiers[tier]}"
            f" ({len(cycles.get(tier, {}).get('buckets', {}))} bkt)"
            for tier in sorted(tiers)
        )
        parts.append(f"{phase}: {tier_bits or 'no requests'}")
    return "service tiers (informational): " + "; ".join(parts)


def gate(latest: dict, fresh: dict) -> tuple[list, list]:
    """Determinism comparison: ``(problems, notes)``.

    Keys present in both signatures must match exactly, and a key that
    vanished from the fresh report is lost coverage — both are problems.
    A key only the fresh report has (a newly added kernel or cost-model
    field, not yet re-baselined) cannot regress against anything, so it
    is reported as an informational note instead of failing the gate.
    """
    baseline_sig = determinism_signature(latest)
    fresh_sig = determinism_signature(fresh)
    problems, notes = [], []
    for key in sorted(baseline_sig.keys() | fresh_sig.keys()):
        a, b = baseline_sig.get(key), fresh_sig.get(key)
        if key not in baseline_sig:
            notes.append(f"{key}: new in fresh ({b!r}); no baseline yet")
        elif key not in fresh_sig:
            problems.append(f"{key}: in checked-in report but missing from fresh")
        elif a != b:
            problems.append(f"{key}: checked-in {a!r} != fresh {b!r}")
    return problems, notes


def cost_model_gate(latest: dict, fresh: dict) -> tuple[list, list]:
    """Relative hot-path regression check: ``(problems, notes)``.

    Compares the dispatch cost-model *ratios* (scheduling waste per pick,
    lazy-sweep work per pop, row-hit pop share) per controller kernel
    against the checked-in baseline with the tolerances in
    :data:`COST_MODEL_RATIO_GATES`.  Exact equality is not required —
    internal-only scheduler changes may legitimately shift sweep work —
    but drift in the regressing direction beyond tolerance fails.
    """
    baseline = latest.get("cost_model") or {}
    current = fresh.get("cost_model") or {}
    problems, notes = [], []
    if not baseline:
        if current:
            notes.append("cost model: no checked-in baseline yet")
        return problems, notes
    for name in sorted(set(baseline) - set(current)):
        problems.append(f"cost model for {name}: missing from fresh report")
    for name, model in sorted(current.items()):
        base = baseline.get(name)
        if base is None:
            notes.append(f"cost model for {name}: new in fresh; no baseline yet")
            continue
        for field, direction, abs_tol, rel_tol in COST_MODEL_RATIO_GATES:
            if field not in base or field not in model:
                continue
            before, after = base[field], model[field]
            drift = after - before if direction == "up" else before - after
            allowed = max(abs_tol, abs(before) * rel_tol)
            if drift > allowed:
                worse = "rose" if direction == "up" else "fell"
                problems.append(
                    f"{name}.{field} {worse} {before} -> {after} "
                    f"(drift {drift:.6f} > tolerance {allowed:.6f})"
                )
    return problems, notes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument(
        "--dir", default=str(REPO_ROOT), metavar="PATH",
        help="directory holding the checked-in BENCH_*.json reports "
             "(default: repo root)",
    )
    parser.add_argument(
        "--gate", action="store_true",
        help="compare --fresh against the latest checked-in report and "
             "exit 1 on any determinism-signature mismatch",
    )
    parser.add_argument(
        "--fresh", metavar="PATH", default=None,
        help="freshly produced BENCH_*.json to gate (required with --gate)",
    )
    args = parser.parse_args(argv)

    reports = load_reports(Path(args.dir))
    if not reports:
        # An empty trajectory is a usage error when browsing, but the
        # gate must not fail a fresh checkout that simply has no
        # checked-in baseline yet.
        if args.gate:
            print(
                f"no trajectory yet: no checked-in BENCH_*.json under "
                f"{args.dir}; nothing to gate against"
            )
            return 0
        print(f"no BENCH_*.json reports under {args.dir}", file=sys.stderr)
        return 1
    print(trajectory_table(reports))
    print(trend_summary(reports))
    print(service_tier_summary(reports[-1]))

    if not args.gate:
        return 0
    if args.fresh is None:
        parser.error("--gate requires --fresh PATH")
    with open(args.fresh, "r", encoding="utf-8") as f:
        fresh = json.load(f)
    latest = reports[-1]
    problems, notes = gate(latest, fresh)
    ratio_problems, ratio_notes = cost_model_gate(latest, fresh)
    print(
        f"\ngate: fresh {args.fresh} vs checked-in {latest['_path']}"
    )
    for note in notes + ratio_notes:
        print(f"  note: {note}")
    if problems or ratio_problems:
        if problems:
            print("DETERMINISM REGRESSION:", file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
        if ratio_problems:
            print("HOT-PATH REGRESSION (cost-model ratios):", file=sys.stderr)
            for problem in ratio_problems:
                print(f"  {problem}", file=sys.stderr)
        print(
            "(if the change is intentional, regenerate the checked-in "
            "report with scripts/bench_report.py)",
            file=sys.stderr,
        )
        return 1
    print("gate: determinism signature and cost-model ratios within bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
