#!/usr/bin/env python
"""Aggregate BENCH_<date>.json reports into a perf-trajectory table.

Every checked-in ``BENCH_*.json`` (written by ``scripts/bench_report.py``)
is one point on the repo's performance trajectory.  This tool lines them
up chronologically and, in ``--gate`` mode, compares a freshly produced
report against the latest checked-in one.  Stdlib only.

Usage::

    python scripts/bench_trend.py                      # print the table
    python scripts/bench_trend.py --gate --fresh /tmp/out/BENCH_*.json

The gate compares only the *determinism signature* — per-kernel
operation counts, the end-to-end ``events_processed`` and the result
digest.  Those are pure functions of the code and must match exactly;
any drift means an unintended behavior change (or a forgotten
re-baseline).  Wall times vary with the host and are reported but never
gated.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def determinism_signature(report: dict) -> dict:
    """Gated subset: operation counts and result digests only.

    Mirrors ``scripts/bench_report.py`` (scripts are not a package, so
    the six lines are repeated rather than imported).
    """
    sig = {k["name"]: k["ops"] for k in report["kernels"]}
    end = report.get("end_to_end")
    if end is not None:
        sig["end_to_end.events_processed"] = end["events_processed"]
        sig["end_to_end.result_sha256"] = end["result_sha256"]
    return sig


def load_reports(directory: Path) -> list:
    """All BENCH_*.json reports in *directory*, oldest first."""
    reports = []
    for path in sorted(directory.glob("BENCH_*.json")):
        with open(path, "r", encoding="utf-8") as f:
            report = json.load(f)
        report["_path"] = str(path)
        reports.append(report)
    return reports


def trajectory_table(reports: list) -> str:
    """One row per report; one column per kernel (wall ms) + end-to-end."""
    names = []
    for report in reports:
        for kernel in report["kernels"]:
            if kernel["name"] not in names:
                names.append(kernel["name"])

    # Kernel names are long; head the columns with indices and print a
    # legend so the table stays within a terminal.
    legend = [f"  k{i}: {name}" for i, name in enumerate(names)]
    header = ["date", "git"] + [f"k{i}" for i in range(len(names))] + ["e2e s"]
    rows = [header]
    for report in reports:
        walls = {k["name"]: k["wall_seconds"] for k in report["kernels"]}
        row = [report.get("date", "?"), report.get("git", "?")]
        for name in names:
            wall = walls.get(name)
            row.append(f"{wall * 1000:.1f}" if wall is not None else "-")
        end = report.get("end_to_end")
        row.append(f"{end['wall_seconds']:.2f}" if end else "-")
        rows.append(row)

    widths = [max(len(r[c]) for r in rows) for c in range(len(header))]
    lines = ["kernel wall times (ms):"] + legend + [""]
    for row in rows:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def trend_summary(reports: list) -> str:
    """Wall-time drift of the newest report vs its predecessor.

    Wall times are host-dependent and never gated, but the drift between
    consecutive checked-in points is still the first thing a reader wants
    from the trajectory.  With fewer than two points there is no trend to
    compute — say so instead of dividing by a missing predecessor.
    """
    if len(reports) < 2:
        return "no trajectory yet (a trend needs at least two checked-in reports)"
    prev, last = reports[-2], reports[-1]
    prev_walls = {k["name"]: k["wall_seconds"] for k in prev["kernels"]}
    parts = []
    for kernel in last["kernels"]:
        before = prev_walls.get(kernel["name"])
        if before:
            delta = (kernel["wall_seconds"] - before) / before * 100.0
            parts.append(f"{kernel['name']} {delta:+.1f}%")
    before_end, after_end = prev.get("end_to_end"), last.get("end_to_end")
    if before_end and after_end and before_end["wall_seconds"]:
        delta = (
            (after_end["wall_seconds"] - before_end["wall_seconds"])
            / before_end["wall_seconds"] * 100.0
        )
        parts.append(f"end_to_end {delta:+.1f}%")
    span = f"{prev.get('date', '?')} -> {last.get('date', '?')}"
    if not parts:
        return f"trend ({span}): no comparable kernels"
    return f"trend ({span}): " + ", ".join(parts)


def gate(latest: dict, fresh: dict) -> list:
    """Mismatches between the checked-in and fresh determinism signatures."""
    baseline_sig = determinism_signature(latest)
    fresh_sig = determinism_signature(fresh)
    problems = []
    for key in sorted(baseline_sig.keys() | fresh_sig.keys()):
        a, b = baseline_sig.get(key), fresh_sig.get(key)
        if a != b:
            problems.append(f"{key}: checked-in {a!r} != fresh {b!r}")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument(
        "--dir", default=str(REPO_ROOT), metavar="PATH",
        help="directory holding the checked-in BENCH_*.json reports "
             "(default: repo root)",
    )
    parser.add_argument(
        "--gate", action="store_true",
        help="compare --fresh against the latest checked-in report and "
             "exit 1 on any determinism-signature mismatch",
    )
    parser.add_argument(
        "--fresh", metavar="PATH", default=None,
        help="freshly produced BENCH_*.json to gate (required with --gate)",
    )
    args = parser.parse_args(argv)

    reports = load_reports(Path(args.dir))
    if not reports:
        # An empty trajectory is a usage error when browsing, but the
        # gate must not fail a fresh checkout that simply has no
        # checked-in baseline yet.
        if args.gate:
            print(
                f"no trajectory yet: no checked-in BENCH_*.json under "
                f"{args.dir}; nothing to gate against"
            )
            return 0
        print(f"no BENCH_*.json reports under {args.dir}", file=sys.stderr)
        return 1
    print(trajectory_table(reports))
    print(trend_summary(reports))

    if not args.gate:
        return 0
    if args.fresh is None:
        parser.error("--gate requires --fresh PATH")
    with open(args.fresh, "r", encoding="utf-8") as f:
        fresh = json.load(f)
    latest = reports[-1]
    problems = gate(latest, fresh)
    print(
        f"\ngate: fresh {args.fresh} vs checked-in {latest['_path']}"
    )
    if problems:
        print("DETERMINISM REGRESSION:", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        print(
            "(if the change is intentional, regenerate the checked-in "
            "report with scripts/bench_report.py)",
            file=sys.stderr,
        )
        return 1
    print("gate: determinism signature matches")
    return 0


if __name__ == "__main__":
    sys.exit(main())
